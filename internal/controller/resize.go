package controller

import (
	"fmt"
	"sort"
	"time"

	"netchain/internal/core"
	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/ring"
)

// Planned elastic reconfiguration (scale-out / scale-in): the controller
// recomputes virtual-group placement through ring.Resize, then runs the
// shared migration engine over every affected group — copy state from a
// reference replica, bump the group's session, atomically flip the route.
// Unlike failure recovery there is no dead switch for neighbor rules to
// match, so phase 1's write stop is the dataplane's serve-while-migrating
// guard (core.Switch.SetWriteFreeze): fresh writes for the migrating group
// bounce with StatusUnavailable while reads — and every other group — keep
// serving.

// keyMove records one key changing virtual groups across a resize (its ring
// segment was split by a new virtual node or merged into its successor by a
// removed one).
type keyMove struct {
	key  kv.Key
	from ring.GroupID
}

// AddSwitch live-migrates the cluster onto a layout that includes sw: the
// switch joins the ring with its own virtual nodes and the affected groups'
// state is copied over before routes flip. done (optional) fires after the
// last group migrates. The returned Diff names every group whose chain
// changed.
func (c *Controller) AddSwitch(sw packet.Addr, done func()) (ring.Diff, error) {
	return c.Resize([]packet.Addr{sw}, nil, done)
}

// RemoveSwitch live-drains sw out of the cluster: its virtual groups retire
// and their key ranges merge into the clockwise successor groups, which
// absorb the data before routes flip. The switch keeps serving until every
// group it participated in has migrated away; afterwards it holds no state
// and can be shut down. done (optional) fires after the last group.
func (c *Controller) RemoveSwitch(sw packet.Addr, done func()) (ring.Diff, error) {
	return c.Resize(nil, []packet.Addr{sw}, done)
}

// Resize performs a combined planned membership change. One resize (or an
// in-flight one) at a time; failure handling remains available throughout —
// only the group currently mid-migration briefly refuses fresh writes.
func (c *Controller) Resize(add, remove []packet.Addr, done func()) (ring.Diff, error) {
	c.mu.Lock()
	if c.resizing {
		c.mu.Unlock()
		return ring.Diff{}, fmt.Errorf("controller: resize already in progress")
	}
	var readmitted []packet.Addr
	for _, sw := range add {
		// Explicitly adding a previously-failed switch is the operator's
		// readmission: its old ring positions were reassigned by Recover,
		// so it rejoins like any new switch — fresh virtual nodes, state
		// copied over before routes flip — and failure handling applies
		// to it again from here on.
		if c.failed[sw] {
			delete(c.failed, sw)
			readmitted = append(readmitted, sw)
		}
	}
	existingGroups := make([]ring.GroupID, 0, len(c.chains))
	for g := range c.chains {
		existingGroups = append(existingGroups, g)
	}
	for _, sw := range remove {
		if c.failed[sw] {
			c.mu.Unlock()
			return ring.Diff{}, fmt.Errorf("controller: %v already failed; use Recover", sw)
		}
	}
	// Snapshot the pre-resize placement of every tracked key, then move the
	// ring. Keys whose group changes keep routing to the donor group (via
	// c.moved) until the receiving group's migration flips.
	oldGroupOf := make(map[kv.Key]ring.GroupID)
	for g, ks := range c.keys {
		for _, k := range ks {
			oldGroupOf[k] = g
		}
	}
	diff, err := c.ring.Resize(add, remove)
	if err != nil {
		c.mu.Unlock()
		return ring.Diff{}, err
	}
	movedInto := make(map[ring.GroupID][]keyMove)
	for k, og := range oldGroupOf {
		ng := c.ring.GroupForKey(k)
		if ng != og {
			c.moved[k] = og
			movedInto[ng] = append(movedInto[ng], keyMove{key: k, from: og})
		}
	}
	for _, moves := range movedInto {
		sort.Slice(moves, func(i, j int) bool {
			a, b := moves[i].key, moves[j].key
			for x := range a {
				if a[x] != b[x] {
					return a[x] < b[x]
				}
			}
			return false
		})
	}
	// Affected groups: every non-retired delta plus every group absorbing
	// keys; deterministic order for reproducible experiments. Retired
	// groups need no migration of their own — their keys travel with the
	// absorbing groups' migrations — but are dismantled at the end.
	affectedSet := make(map[ring.GroupID]bool)
	var retired []ring.GroupID
	for g, d := range diff.Deltas {
		if d.Retired() {
			retired = append(retired, g)
			continue
		}
		affectedSet[g] = true
	}
	for g := range movedInto {
		affectedSet[g] = true
	}
	affected := make([]ring.GroupID, 0, len(affectedSet))
	for g := range affectedSet {
		affected = append(affected, g)
		c.migratingGroups[g] = true
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	c.resizing = true
	c.mu.Unlock()

	// Scrub every readmitted switch before its new groups migrate onto
	// it: wipe the residual replicas it still holds from before it
	// failed (their groups are served by replacements now — a
	// stale-routed read must get NotFound, never an old value), and lift
	// the Algorithm 2/3 rules its neighbors still carry for it (the
	// wildcard next-hop and per-group redirects that bridged the outage
	// would otherwise hijack every frame addressed to the returning
	// switch, bypassing its data plane forever).
	for _, sw := range readmitted {
		if a, ok := c.agent(sw); ok {
			if ks, err := a.Keys(); err == nil {
				for _, k := range ks {
					_ = a.RemoveKey(k)
				}
			}
		}
		for _, nb := range c.neighbors(sw) {
			if a, ok := c.agent(nb); ok {
				_ = a.RemoveRule(sw, core.WildcardGroup)
				for _, g := range existingGroups {
					_ = a.RemoveRule(sw, int(g))
				}
			}
		}
	}

	c.runMigrations(len(affected), func(i int) *migration {
		g := affected[i]
		return c.buildResizeMigration(g, movedInto[g])
	}, func() {
		c.mu.Lock()
		for _, g := range retired {
			delete(c.chains, g)
			delete(c.keys, g)
			delete(c.sessions, g)
		}
		c.resizing = false
		c.migratingGroups = make(map[ring.GroupID]bool)
		c.droppedKeys = make(map[kv.Key]bool)
		c.mu.Unlock()
		if done != nil {
			done()
		}
	})
	return diff, nil
}

// Resizing reports whether a planned reconfiguration is in flight.
func (c *Controller) Resizing() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resizing
}

// buildResizeMigration plans one group's resize migration: freeze fresh
// writes on the serving chain (and on donor chains while their keys copy),
// sync state, flip, unfreeze, GC the donors' orphaned slots.
func (c *Controller) buildResizeMigration(g ring.GroupID, moves []keyMove) *migration {
	c.mu.Lock()
	newChain, err := c.ring.ChainForGroup(g)
	if err != nil {
		c.mu.Unlock()
		return nil
	}
	newChain = c.liveChainLocked(newChain)
	old := c.chains[g] // zero-valued for groups born in this resize
	adds := additions(old, newChain)
	leavers := additions(newChain, old) // serving members not in the new chain
	groupKeys := append([]kv.Key(nil), c.keys[g]...)
	items := len(groupKeys)
	// Donor serving chains and session floor: the receiving group's next
	// session must dominate every version stamped under a donor's session,
	// or replicas would reject post-migration writes as stale.
	donorChains := make(map[ring.GroupID]ring.Chain, len(moves))
	var sessionFloor uint32
	for _, mv := range moves {
		donorChains[mv.from] = c.chains[mv.from]
		if s := c.sessions[mv.from]; s > sessionFloor {
			sessionFloor = s
		}
	}
	c.mu.Unlock()

	if len(adds) == 0 && len(moves) == 0 {
		if old.Equal(newChain) {
			return nil
		}
		if len(leavers) == 0 && len(old.Hops) > 0 && len(newChain.Hops) > 0 &&
			old.Head() == newChain.Head() {
			// Pure reorder of the serving members: no data to move, no
			// head change — adopt.
			return &migration{group: g, old: old, next: newChain, adoptOnly: true}
		}
		// Head changed or members left without replacement: run the phases
		// (session bump / leaver GC) with an empty copy set.
	}

	// Freeze set: every serving member of the group (any of them may act
	// as head behind failover rules) plus every donor chain member.
	type freezeTarget struct {
		sw    packet.Addr
		group ring.GroupID
	}
	var freezes []freezeTarget
	seen := make(map[freezeTarget]bool)
	addFreeze := func(sw packet.Addr, fg ring.GroupID) {
		ft := freezeTarget{sw, fg}
		if !seen[ft] {
			seen[ft] = true
			freezes = append(freezes, ft)
		}
	}
	for _, h := range old.Hops {
		addFreeze(h, g)
	}
	for dg, ch := range donorChains {
		for _, h := range ch.Hops {
			addFreeze(h, dg)
		}
	}

	syncItems := items*len(adds) + len(moves)*len(newChain.Hops)
	syncDur := time.Duration(syncItems) * c.cfg.SyncPerItem

	m := &migration{
		group:        g,
		old:          old,
		next:         newChain,
		stopWait:     c.cfg.RuleDelay + syncDur,
		sessionFloor: sessionFloor,
		bumpSession:  len(moves) > 0,
		stop: func() {
			for _, ft := range freezes {
				if a, ok := c.agent(ft.sw); ok {
					_ = a.FreezeWrites(uint16(ft.group), true)
				}
			}
		},
		sync: func() {
			// Members joining the chain receive the group's current keys
			// from a reference replica (§5.2 "Handling special cases").
			for _, add := range adds {
				if ref, ok := referenceSwitch(newChain, add, old); ok {
					c.copyGroup(g, ref, add)
				}
			}
			// Keys absorbed from donor groups come from the donor tail —
			// the replica guaranteed to hold only committed writes — to
			// every member of the new chain.
			for _, mv := range moves {
				c.copyKey(mv.key, donorChains[mv.from], newChain)
			}
		},
		flip: func() {
			// Key-ownership bookkeeping, under c.mu: the absorbed keys now
			// belong to g and route through its (just-flipped) chain, and
			// the group accepts inserts again. Keys GC'd mid-resize stay
			// deleted — and because a GC under wall-clock time can slip in
			// between copyKey's drop check and the item landing on the new
			// chain, the flip scrubs every dropped key of this group off
			// the chain it is about to serve from.
			delete(c.migratingGroups, g)
			for k := range c.droppedKeys {
				if c.ring.GroupForKey(k) != g {
					continue
				}
				for _, h := range newChain.Hops {
					if a, ok := c.agent(h); ok {
						_ = a.RemoveKey(k)
					}
				}
			}
			for _, mv := range moves {
				if c.droppedKeys[mv.key] {
					continue
				}
				ks := c.keys[mv.from]
				for i, k := range ks {
					if k == mv.key {
						c.keys[mv.from] = append(ks[:i], ks[i+1:]...)
						break
					}
				}
				c.keys[g] = append(c.keys[g], mv.key)
				delete(c.moved, mv.key)
			}
		},
		activate: func() {
			// Unfreeze only the members now serving the group: a write that
			// is still in flight toward a donor head or a leaver must keep
			// bouncing (StatusUnavailable → client retries on the fresh
			// route) — an unfrozen old head with a live slot would stamp
			// and ack the write on a chain the copy already left behind, an
			// acknowledged lost update.
			for _, ft := range freezes {
				if ft.group == g && newChain.Contains(ft.sw) {
					if a, ok := c.agent(ft.sw); ok {
						_ = a.FreezeWrites(uint16(ft.group), false)
					}
				}
			}
			// GC absorbed keys' slots from donor members that are not part
			// of the new chain, and the group's own keys from members that
			// left it (exact placement: a key lives on its chain's switches
			// and nowhere else — this is also what lets a drained switch be
			// powered off empty). The removal waits out one rule delay so
			// reads that resolved their route to the donor/leaver chain
			// just before the flip drain off the wire first; removing the
			// slot under them would turn an existing key into a spurious
			// NotFound. Only once the slots are gone do the donors and
			// leavers unfreeze — from then on a stale-routed write fails
			// with NotFound instead of silently committing.
			c.sched.After(c.cfg.RuleDelay, func() {
				for _, mv := range moves {
					for _, h := range donorChains[mv.from].Hops {
						if !newChain.Contains(h) {
							if a, ok := c.agent(h); ok {
								_ = a.RemoveKey(mv.key)
							}
						}
					}
				}
				for _, h := range leavers {
					if a, ok := c.agent(h); ok {
						for _, k := range groupKeys {
							_ = a.RemoveKey(k)
						}
					}
				}
				for _, ft := range freezes {
					if ft.group == g && newChain.Contains(ft.sw) {
						continue // already lifted at activation
					}
					if a, ok := c.agent(ft.sw); ok {
						_ = a.FreezeWrites(uint16(ft.group), false)
					}
				}
			})
		},
	}
	return m
}

// copyKey replicates one key's record from the donor chain's tail onto
// every member of the destination chain, allocating slots as needed. Keys
// the client GC'd since the resize started are not copied — the deletion
// wins over the move.
func (c *Controller) copyKey(k kv.Key, donor, dst ring.Chain) {
	c.mu.Lock()
	dropped := c.droppedKeys[k]
	c.mu.Unlock()
	if dropped {
		return
	}
	var it core.Item
	haveItem := false
	if len(donor.Hops) > 0 {
		if src, ok := c.agent(donor.Tail()); ok {
			if item, err := src.ReadItem(k); err == nil {
				it, haveItem = item, true
			}
		}
	}
	for _, h := range dst.Hops {
		a, ok := c.agent(h)
		if !ok {
			continue
		}
		if !haveItem {
			// Donor unreadable (key mid-insert or chain fully failed):
			// install the slot so post-migration writes land.
			_ = a.InstallKey(k)
			continue
		}
		_ = a.WriteItem(it)
	}
}
