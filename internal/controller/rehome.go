package controller

import (
	"fmt"
	"sort"
	"time"

	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/ring"
)

// Rehome live-migrates the given virtual groups onto explicitly planned
// chains — the verb behind bottleneck-aware placement on fabrics. The
// ring's key→group mapping is untouched (ring.SetPlacement only moves
// where each group's chain lives), so unlike Resize no keys change
// groups: each affected group runs the shared two-phase migration —
// freeze fresh writes on the serving chain, copy state onto joining
// members from a reference replica, atomically flip the route, GC the
// leavers. done (optional) fires after the last group. One long-running
// reconfiguration at a time: Rehome shares the resize latch.
func (c *Controller) Rehome(plans map[ring.GroupID][]packet.Addr, done func()) error {
	c.mu.Lock()
	if c.resizing {
		c.mu.Unlock()
		return fmt.Errorf("controller: reconfiguration already in progress")
	}
	if len(plans) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("controller: rehome with no plans")
	}
	for g, hops := range plans {
		for _, h := range hops {
			if c.failed[h] {
				c.mu.Unlock()
				return fmt.Errorf("controller: rehome of group %d onto failed switch %v", g, h)
			}
		}
	}
	if err := c.ring.SetPlacement(plans); err != nil {
		c.mu.Unlock()
		return err
	}
	affected := make([]ring.GroupID, 0, len(plans))
	for g := range plans {
		affected = append(affected, g)
		c.migratingGroups[g] = true
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	c.resizing = true
	c.mu.Unlock()

	c.runMigrations(len(affected), func(i int) *migration {
		return c.buildRehomeMigration(affected[i])
	}, func() {
		c.mu.Lock()
		c.resizing = false
		c.migratingGroups = make(map[ring.GroupID]bool)
		c.mu.Unlock()
		if done != nil {
			done()
		}
	})
	return nil
}

// buildRehomeMigration plans one group's move onto its placed chain:
// buildResizeMigration minus the donor machinery (no keys change
// groups), with the same freeze-sync-flip-GC shape.
func (c *Controller) buildRehomeMigration(g ring.GroupID) *migration {
	c.mu.Lock()
	newChain, err := c.ring.ChainForGroup(g)
	if err != nil {
		delete(c.migratingGroups, g)
		c.mu.Unlock()
		return nil
	}
	newChain = c.liveChainLocked(newChain)
	old := c.chains[g]
	adds := additions(old, newChain)
	leavers := additions(newChain, old)
	groupKeys := append([]kv.Key(nil), c.keys[g]...)
	items := len(groupKeys)
	c.mu.Unlock()

	if len(adds) == 0 {
		if old.Equal(newChain) {
			c.mu.Lock()
			delete(c.migratingGroups, g)
			c.mu.Unlock()
			return nil
		}
		if len(leavers) == 0 && len(old.Hops) > 0 && len(newChain.Hops) > 0 &&
			old.Head() == newChain.Head() {
			c.mu.Lock()
			delete(c.migratingGroups, g)
			c.mu.Unlock()
			return &migration{group: g, old: old, next: newChain, adoptOnly: true}
		}
	}

	syncDur := time.Duration(items*len(adds)) * c.cfg.SyncPerItem
	return &migration{
		group:    g,
		old:      old,
		next:     newChain,
		stopWait: c.cfg.RuleDelay + syncDur,
		stop: func() {
			// Freeze every serving member: behind failover rules any of
			// them may act as head, and a write stamped mid-copy on the old
			// chain would be lost the moment the new tail takes over.
			for _, h := range old.Hops {
				if a, ok := c.agent(h); ok {
					_ = a.FreezeWrites(uint16(g), true)
				}
			}
		},
		sync: func() {
			for _, add := range adds {
				if ref, ok := referenceSwitch(newChain, add, old); ok {
					c.copyGroup(g, ref, add)
				}
			}
		},
		flip: func() {
			delete(c.migratingGroups, g)
		},
		activate: func() {
			// Unfreeze the members now serving the group; leavers stay
			// frozen until their slots are gone, so a stale-routed write
			// fails with NotFound instead of committing on an abandoned
			// chain. The GC waits out one rule delay for in-flight reads
			// that resolved the old route to drain off the wire.
			for _, h := range old.Hops {
				if newChain.Contains(h) {
					if a, ok := c.agent(h); ok {
						_ = a.FreezeWrites(uint16(g), false)
					}
				}
			}
			c.sched.After(c.cfg.RuleDelay, func() {
				for _, h := range leavers {
					if a, ok := c.agent(h); ok {
						for _, k := range groupKeys {
							_ = a.RemoveKey(k)
						}
						_ = a.FreezeWrites(uint16(g), false)
					}
				}
			})
		},
	}
}

// Rehoming reports whether a rehome (or any planned reconfiguration) is
// in flight — Rehome shares the resize latch.
func (c *Controller) Rehoming() bool { return c.Resizing() }
