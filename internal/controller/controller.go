// Package controller implements the NetChain control plane (§5): the
// reconfiguration half of Vertical Paxos. It owns the consistent-hash ring
// and the per-virtual-group session counters, performs fast failover
// (Algorithm 2) by programming the failed switch's neighbors, and failure
// recovery (Algorithm 3) by syncing state onto a replacement switch and
// atomically switching each virtual group's chain in two phases.
//
// The controller is substrate-agnostic: switch access goes through the
// Agent interface (the simulator binds it to core.Switch directly; the
// real deployment binds it to net/rpc clients, mirroring the paper's
// Python controller speaking xmlrpc to switch agents), and time goes
// through the Scheduler interface (simulated or wall-clock).
package controller

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"netchain/internal/core"
	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/ring"
)

// Agent is the control-plane view of one switch (the paper's per-switch
// agent driving the ASIC through the compiler-generated API, §7).
type Agent interface {
	InstallKey(k kv.Key) error
	RemoveKey(k kv.Key) error
	SetSession(group uint16, session uint32) error
	FreezeWrites(group uint16, frozen bool) error
	InstallRule(dst packet.Addr, group int, r core.Rule) error
	RemoveRule(dst packet.Addr, group int) error
	ReadItem(k kv.Key) (core.Item, error)
	WriteItem(it core.Item) error
	// Keys lists every key the switch currently holds a slot for —
	// readmission wipes a returning switch's residual state with it.
	Keys() ([]kv.Key, error)
}

// LocalAgent adapts a core.Switch to the Agent interface for in-process
// use (simulation and tests).
type LocalAgent struct{ Switch *core.Switch }

func (a LocalAgent) InstallKey(k kv.Key) error { return a.Switch.InstallKey(k) }
func (a LocalAgent) RemoveKey(k kv.Key) error  { return a.Switch.RemoveKey(k) }
func (a LocalAgent) SetSession(g uint16, s uint32) error {
	a.Switch.SetSession(g, s)
	return nil
}
func (a LocalAgent) FreezeWrites(g uint16, frozen bool) error {
	a.Switch.SetWriteFreeze(g, frozen)
	return nil
}
func (a LocalAgent) InstallRule(dst packet.Addr, g int, r core.Rule) error {
	a.Switch.InstallRule(dst, g, r)
	return nil
}
func (a LocalAgent) RemoveRule(dst packet.Addr, g int) error {
	a.Switch.RemoveRule(dst, g)
	return nil
}
func (a LocalAgent) ReadItem(k kv.Key) (core.Item, error) { return a.Switch.ReadItem(k) }
func (a LocalAgent) WriteItem(it core.Item) error         { return a.Switch.WriteItem(it) }
func (a LocalAgent) Keys() ([]kv.Key, error)              { return a.Switch.Keys(), nil }

// Scheduler abstracts time so the controller's multi-step procedures can
// run under simulated or wall-clock time.
type Scheduler interface {
	After(d time.Duration, fn func())
}

// WallClock schedules on real time.
type WallClock struct{}

// After implements Scheduler using time.AfterFunc.
func (WallClock) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// Config carries the control-plane timing model.
type Config struct {
	// RuleDelay is the latency of programming one batch of rules into the
	// neighbor switches (controller RPC + table write).
	RuleDelay time.Duration
	// SyncPerItem is the control-plane cost of copying one key-value item
	// between switches during recovery. The paper's Python/Thrift path is
	// slow — their 20K-item store takes ~150 s (Fig. 10), i.e. several ms
	// per item.
	SyncPerItem time.Duration
	// PreSync enables Algorithm 3 Step 1: bulk-copy state *before*
	// stopping writes, so the stop window covers only the delta. The
	// paper describes this optimization but its measured prototype blocks
	// writes for the full sync (Fig. 10(a)); default off to match, on for
	// the ablation bench.
	PreSync bool
	// PreSyncDelta is the residual stop-window duration when PreSync is
	// enabled (the delta copy).
	PreSyncDelta time.Duration
}

// DefaultConfig returns timings calibrated to Fig. 10: ~150 s to recover a
// 20K-item store.
func DefaultConfig() Config {
	return Config{
		RuleDelay:    10 * time.Millisecond,
		SyncPerItem:  7 * time.Millisecond,
		PreSync:      false,
		PreSyncDelta: 50 * time.Millisecond,
	}
}

// Route is what a client needs to reach a key: its virtual group and the
// current chain (head first). Clients derive write packets (dst = head,
// list = rest) and read packets (dst = tail, list = reversed rest).
type Route struct {
	Group uint16
	Hops  []packet.Addr
}

// Controller is the NetChain control plane. It is assumed reliable
// (replicated in practice, §3); a single instance here.
type Controller struct {
	mu        sync.Mutex
	cfg       Config
	ring      *ring.Ring
	sched     Scheduler
	agent     func(packet.Addr) (Agent, bool)
	neighbors func(packet.Addr) []packet.Addr

	chains   map[ring.GroupID]ring.Chain // current chain per group (reflects failover/recovery)
	sessions map[ring.GroupID]uint32
	keys     map[ring.GroupID][]kv.Key
	failed   map[packet.Addr]bool

	// moved maps keys whose ring placement changed in an in-flight resize
	// to the group still serving them: the route a client gets stays on the
	// donor chain until the receiving group's migration flips.
	moved map[kv.Key]ring.GroupID
	// resizing guards against overlapping long-running reconfigurations.
	resizing bool
	// migratingGroups marks groups whose resize migration has not flipped
	// yet: Insert refuses keys landing there (a slot installed on the old
	// chain after the state copy snapshots would be lost at the flip, and
	// would dodge the leaver GC).
	migratingGroups map[ring.GroupID]bool
	// droppedKeys records keys GC'd while a resize was in flight: their
	// pending moves are cancelled so the migration cannot resurrect a
	// deleted key (reinstalled slots, re-tracked in c.keys).
	droppedKeys map[kv.Key]bool

	// OnGroupRecovered, if set, is called (under the scheduler goroutine)
	// after each virtual group's two-phase switch completes — during
	// failure recovery and during planned resize migrations alike.
	OnGroupRecovered func(g ring.GroupID)
}

// New builds a controller over an existing ring. agent resolves a switch
// address to its control connection; neighbors lists a switch's physical
// neighbors (where Algorithm 2 rules go).
func New(cfg Config, r *ring.Ring, sched Scheduler,
	agent func(packet.Addr) (Agent, bool),
	neighbors func(packet.Addr) []packet.Addr) (*Controller, error) {
	if r.Groups() > 1<<16 {
		return nil, fmt.Errorf("controller: %d virtual groups exceed the packet group field", r.Groups())
	}
	c := &Controller{
		cfg:             cfg,
		ring:            r,
		sched:           sched,
		agent:           agent,
		neighbors:       neighbors,
		chains:          r.Chains(),
		sessions:        make(map[ring.GroupID]uint32),
		keys:            make(map[ring.GroupID][]kv.Key),
		failed:          make(map[packet.Addr]bool),
		moved:           make(map[kv.Key]ring.GroupID),
		migratingGroups: make(map[ring.GroupID]bool),
		droppedKeys:     make(map[kv.Key]bool),
	}
	return c, nil
}

// Ring exposes the partitioning state (read-only use).
func (c *Controller) Ring() *ring.Ring { return c.ring }

// Route returns the current route for key k. During a live resize, a key
// whose ring placement already changed keeps routing to its donor group
// until the receiving group's migration flips, so clients never observe a
// chain that does not yet hold the key's data.
func (c *Controller) Route(k kv.Key) Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routeLocked(c.servingGroupLocked(k))
}

// servingGroupLocked resolves the group currently serving k: the ring
// placement, overridden by the in-flight-resize move table.
func (c *Controller) servingGroupLocked(k kv.Key) ring.GroupID {
	if g, ok := c.moved[k]; ok {
		return g
	}
	return c.ring.GroupForKey(k)
}

// GroupRoute returns the current route for a virtual group.
func (c *Controller) GroupRoute(g ring.GroupID) Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routeLocked(g)
}

func (c *Controller) routeLocked(g ring.GroupID) Route {
	ch := c.chains[g]
	return Route{Group: uint16(g), Hops: append([]packet.Addr(nil), ch.Hops...)}
}

// Routes snapshots every group's route (client agent refresh).
func (c *Controller) Routes() map[uint16]Route {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint16]Route, len(c.chains))
	for g := range c.chains {
		out[uint16(g)] = c.routeLocked(g)
	}
	return out
}

// Insert allocates slots for key k on every switch of its chain (§4.1:
// "Insert queries require the control plane to set up entries in switch
// tables") and returns the route the client should write through.
func (c *Controller) Insert(k kv.Key) (Route, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.servingGroupLocked(k)
	ch, ok := c.chains[g]
	if !ok || len(ch.Hops) == 0 || c.migratingGroups[c.ring.GroupForKey(k)] {
		// The key maps to a group whose resize migration has not flipped
		// yet: a slot installed on the serving chain now would miss the
		// state copy and be lost at the flip. Callers retry after the
		// group activates.
		return Route{}, fmt.Errorf("controller: group %d is mid-migration, retry insert", g)
	}
	installed := make([]Agent, 0, len(ch.Hops))
	for _, hop := range ch.Hops {
		a, ok := c.agent(hop)
		if !ok {
			c.rollback(installed, k)
			return Route{}, fmt.Errorf("controller: no agent for %v", hop)
		}
		if err := a.InstallKey(k); err != nil {
			c.rollback(installed, k)
			return Route{}, fmt.Errorf("controller: install %v on %v: %w", k, hop, err)
		}
		installed = append(installed, a)
	}
	c.keys[g] = append(c.keys[g], k)
	return c.routeLocked(g), nil
}

func (c *Controller) rollback(agents []Agent, k kv.Key) {
	for _, a := range agents {
		_ = a.RemoveKey(k)
	}
}

// GC removes a deleted key's slots from its chain (Delete garbage
// collection, §4.1). The client must have tombstoned the key first.
func (c *Controller) GC(k kv.Key) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.servingGroupLocked(k)
	if c.resizing {
		// Cancel any pending move of this key: a resize migration finding
		// the donor unreadable would otherwise reinstall slots for (and
		// re-track) a key the client just deleted.
		c.droppedKeys[k] = true
		delete(c.moved, k)
	}
	for _, hop := range c.chains[g].Hops {
		if a, ok := c.agent(hop); ok {
			_ = a.RemoveKey(k)
		}
	}
	keys := c.keys[g]
	for i, kk := range keys {
		if kk == k {
			c.keys[g] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	return nil
}

// KeyCount returns the number of live keys tracked per group (diagnostics).
func (c *Controller) KeyCount(g ring.GroupID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.keys[g])
}

// Session returns the current session number of a group.
func (c *Controller) Session(g ring.GroupID) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[g]
}

// ---------------------------------------------------------------------------
// Fast failover: Algorithm 2.

// HandleFailure reconfigures the network around a failed switch: installs
// next-hop rules on every neighbor and degrades every affected chain to
// its remaining nodes. done (optional) fires when the rules are active.
func (c *Controller) HandleFailure(failedSw packet.Addr, done func()) error {
	c.mu.Lock()
	if c.failed[failedSw] {
		c.mu.Unlock()
		return fmt.Errorf("controller: %v already failed over", failedSw)
	}
	c.failed[failedSw] = true

	// Degrade chains and bump sessions where the head changed (§5.2: the
	// new head's writes must dominate the dead head's in-flight writes).
	type sessionUpdate struct {
		head  packet.Addr
		group ring.GroupID
		sess  uint32
	}
	var updates []sessionUpdate
	for g, ch := range c.chains {
		if !ch.Contains(failedSw) {
			continue
		}
		hops := make([]packet.Addr, 0, len(ch.Hops)-1)
		for _, h := range ch.Hops {
			if h != failedSw {
				hops = append(hops, h)
			}
		}
		wasHead := ch.Head() == failedSw
		c.chains[g] = ring.Chain{Group: g, Hops: hops}
		if wasHead && len(hops) > 0 {
			c.sessions[g]++
			updates = append(updates, sessionUpdate{hops[0], g, c.sessions[g]})
		}
	}
	neighbors := c.neighbors(failedSw)
	c.mu.Unlock()

	c.sched.After(c.cfg.RuleDelay, func() {
		for _, u := range updates {
			if a, ok := c.agent(u.head); ok {
				_ = a.SetSession(uint16(u.group), u.sess)
			}
		}
		for _, nb := range neighbors {
			if a, ok := c.agent(nb); ok {
				_ = a.InstallRule(failedSw, core.WildcardGroup, core.Rule{Action: core.ActNextHop})
			}
		}
		if done != nil {
			done()
		}
	})
	return nil
}

// ---------------------------------------------------------------------------
// Migration engine: the two-phase atomic group switch of Algorithm 3,
// factored out so failure recovery and planned resize share it. A migration
// processes one virtual group at a time (§5.2: only 1/groups of the key
// space loses write availability at any instant): phase 1 stops fresh
// writes for the group and syncs state inside the stop window; phase 2
// bumps the session where the head changed, flips the serving chain, and
// reprograms routing.

// migration is one virtual group's two-phase reconfiguration.
type migration struct {
	group ring.GroupID
	old   ring.Chain // chain serving the group when the migration starts
	next  ring.Chain // chain after activation

	// adoptOnly short-circuits both phases: the new chain is a subset of
	// the serving one (no data movement, no stop window needed).
	adoptOnly bool

	// preSync, when set, bulk-copies state for preWait *before* the stop
	// window so only the delta is copied inside it (Algorithm 3 Step 1).
	preSync func()
	preWait time.Duration
	// stop installs the phase-1 write stop: neighbor drop rules for
	// failure recovery, head write-freezes for planned resize.
	stop func()
	// stopWait models phase 1's duration: rule/freeze installation plus
	// the state sync performed inside the window.
	stopWait time.Duration
	// sync copies state inside the stop window.
	sync func()
	// sessionFloor raises the group's session before the bump so writes
	// stamped after activation dominate versions imported from donor
	// groups (their sessions advanced independently).
	sessionFloor uint32
	// bumpSession forces a session bump even when the head is unchanged
	// (a group that absorbs keys needs its future writes to dominate the
	// donors' stamps).
	bumpSession bool
	// flip runs under c.mu at activation, right after the serving chain is
	// swapped — key-ownership bookkeeping for resize moves.
	flip func()
	// activate reprograms routing after the flip: redirect rules for
	// failure recovery, unfreezes and donor-slot GC for resize.
	activate func()
}

// liveChainLocked filters switches marked failed out of a planned chain
// (their groups re-heal through Recover, not by re-installing them).
func (c *Controller) liveChainLocked(ch ring.Chain) ring.Chain {
	live := ring.Chain{Group: ch.Group, Hops: make([]packet.Addr, 0, len(ch.Hops))}
	for _, h := range ch.Hops {
		if !c.failed[h] {
			live.Hops = append(live.Hops, h)
		}
	}
	return live
}

// runMigrations executes n migrations sequentially. build is invoked
// lazily when each group's turn arrives so it observes the chains as
// earlier migrations (and any concurrent failovers) left them; returning
// nil skips the group. done (optional) fires after the last group.
func (c *Controller) runMigrations(n int, build func(i int) *migration, done func()) {
	c.migrateNext(n, build, 0, done)
}

func (c *Controller) migrateNext(n int, build func(i int) *migration, i int, done func()) {
	if i >= n {
		if done != nil {
			done()
		}
		return
	}
	m := build(i)
	if m == nil {
		c.migrateNext(n, build, i+1, done)
		return
	}
	if m.adoptOnly {
		c.mu.Lock()
		c.chains[m.group] = c.liveChainLocked(m.next)
		c.mu.Unlock()
		c.migrateNext(n, build, i+1, done)
		return
	}
	phase1 := func() {
		if m.stop != nil {
			m.stop()
		}
		c.sched.After(m.stopWait, func() {
			if m.sync != nil {
				m.sync()
			}
			// Phase 2: activation. Switches that failed while this group's
			// stop window ran are filtered here, at flip time — installing
			// them would overwrite the degradation a concurrent
			// HandleFailure applied and route clients at a dead hop.
			c.mu.Lock()
			next := c.liveChainLocked(m.next)
			headIsNew := len(next.Hops) > 0 && !m.old.Contains(next.Head())
			if c.sessions[m.group] < m.sessionFloor {
				c.sessions[m.group] = m.sessionFloor
			}
			var sess uint32
			needSession := headIsNew || m.bumpSession
			if needSession {
				c.sessions[m.group]++
				sess = c.sessions[m.group]
			}
			c.chains[m.group] = next
			if m.flip != nil {
				m.flip()
			}
			c.mu.Unlock()
			if needSession && len(next.Hops) > 0 {
				if a, ok := c.agent(next.Head()); ok {
					_ = a.SetSession(uint16(m.group), sess)
				}
			}
			if m.activate != nil {
				m.activate()
			}
			c.sched.After(c.cfg.RuleDelay, func() {
				if cb := c.OnGroupRecovered; cb != nil {
					cb(m.group)
				}
				c.migrateNext(n, build, i+1, done)
			})
		})
	}
	if m.preSync != nil {
		c.sched.After(m.preWait, func() {
			m.preSync()
			phase1()
		})
	} else {
		phase1()
	}
}

// ---------------------------------------------------------------------------
// Failure recovery: Algorithm 3, one virtual group at a time (§5.2).

// Recover reassigns the failed switch's virtual nodes round-robin over the
// pool of live replacement switches (§5.2 spreads them "to multiple
// switches rather than a single switch"), then restores each affected
// group's chain to full strength with the two-phase atomic switch. done
// (optional) fires after the last group. Pool switches outside the ring
// membership are admitted without virtual nodes of their own (the
// testbed's spare S3).
func (c *Controller) Recover(failedSw packet.Addr, pool []packet.Addr, done func()) error {
	c.mu.Lock()
	if !c.failed[failedSw] {
		c.mu.Unlock()
		return fmt.Errorf("controller: recover before failover of %v", failedSw)
	}
	if len(pool) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("controller: empty replacement pool")
	}
	for _, p := range pool {
		if p == failedSw || c.failed[p] {
			c.mu.Unlock()
			return fmt.Errorf("controller: replacement %v is failed", p)
		}
		if !c.ring.IsMember(p) {
			if err := c.ring.AddMember(p); err != nil {
				c.mu.Unlock()
				return err
			}
		}
	}
	// Affected groups: those whose ring chain still references the failed
	// switch. Deterministic order for reproducible experiments.
	affected := c.ring.GroupsOfSwitch(failedSw)
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	if err := c.ring.Reassign(failedSw, func(i int) packet.Addr { return pool[i%len(pool)] }); err != nil {
		c.mu.Unlock()
		return err
	}
	neighbors := c.neighbors(failedSw)
	c.mu.Unlock()

	c.runMigrations(len(affected), func(i int) *migration {
		return c.buildRecoverMigration(failedSw, neighbors, affected[i])
	}, done)
	return nil
}

// buildRecoverMigration plans one group's recovery migration: the stop is
// a per-group drop rule on the failed switch's neighbors, the activation a
// redirect rule pointing stale traffic at the replacement (Algorithm 3).
func (c *Controller) buildRecoverMigration(failedSw packet.Addr,
	neighbors []packet.Addr, g ring.GroupID) *migration {
	c.mu.Lock()
	newChain, err := c.ring.ChainForGroup(g)
	if err != nil {
		c.mu.Unlock()
		return nil
	}
	degraded := c.chains[g]
	adds := additions(degraded, newChain)
	items := len(c.keys[g])
	c.mu.Unlock()

	if len(adds) == 0 {
		// Chain unchanged (replacement coincides with existing members);
		// just adopt the new chain.
		return &migration{group: g, old: degraded, next: newChain, adoptOnly: true}
	}

	syncDur := time.Duration(items*len(adds)) * c.cfg.SyncPerItem
	doSync := func() {
		for _, add := range adds {
			if ref, ok := referenceSwitch(newChain, add, degraded); ok {
				c.copyGroup(g, ref, add)
			}
		}
	}
	m := &migration{
		group: g,
		old:   degraded,
		next:  newChain,
		sync:  doSync,
		stop: func() {
			for _, nb := range neighbors {
				if a, ok := c.agent(nb); ok {
					_ = a.InstallRule(failedSw, int(g), core.Rule{Action: core.ActDrop})
				}
			}
			// The drop rules only stop traffic still addressed to the
			// dead switch; after fast failover the degraded chain serves
			// under its own addresses and would keep stamping fresh
			// writes THROUGH the copy window — a write in flight down
			// the degraded chain when the reference replica is read
			// misses the copy and is lost the moment the replacement
			// becomes tail. Freeze every degraded member for the window
			// (the same serve-while-migrating guard the planned resize
			// uses — behind failover rules, any member a stale route
			// lists first can act as head); the stopWait drain then lets
			// stamped writes reach the reference before doSync reads it.
			for _, h := range degraded.Hops {
				if a, ok := c.agent(h); ok {
					_ = a.FreezeWrites(uint16(g), true)
				}
			}
		},
		activate: func() {
			// The freeze outlives activation by one rule delay: a write
			// that resolved the degraded route just before the flip may
			// still be in flight, and an old member that unfroze at the
			// flip would stamp and ack it on a chain the state copy has
			// already left — an acknowledged write the freshly-synced
			// replacement (often the new tail) would never see.
			c.sched.After(c.cfg.RuleDelay, func() {
				for _, h := range degraded.Hops {
					if a, ok := c.agent(h); ok {
						_ = a.FreezeWrites(uint16(g), false)
					}
				}
			})
			// Traffic still addressed to the failed switch follows the
			// replacement that took its chain position.
			for _, nb := range neighbors {
				if a, ok := c.agent(nb); ok {
					_ = a.InstallRule(failedSw, int(g),
						core.Rule{Action: core.ActRedirect, To: adds[0]})
				}
			}
		},
	}
	if c.cfg.PreSync {
		// Step 1 (optimization): bulk copy while the degraded chain keeps
		// serving; only the delta is copied inside the stop window.
		m.preSync = doSync
		m.preWait = syncDur
		m.stopWait = c.cfg.RuleDelay + c.cfg.PreSyncDelta
	} else {
		m.stopWait = c.cfg.RuleDelay + syncDur
	}
	return m
}

// copyGroup copies every item of group g from ref to dst (the actual data
// movement behind the modelled sync duration).
func (c *Controller) copyGroup(g ring.GroupID, ref, dst packet.Addr) {
	c.mu.Lock()
	keys := append([]kv.Key(nil), c.keys[g]...)
	c.mu.Unlock()
	src, ok := c.agent(ref)
	if !ok {
		return
	}
	to, ok := c.agent(dst)
	if !ok {
		return
	}
	for _, k := range keys {
		it, err := src.ReadItem(k)
		if err != nil {
			// Key may be mid-insert; install the slot so chain writes land.
			_ = to.InstallKey(k)
			continue
		}
		_ = to.WriteItem(it)
	}
}

// additions lists switches present in next but not in cur, chain order.
func additions(cur, next ring.Chain) []packet.Addr {
	var out []packet.Addr
	for _, h := range next.Hops {
		if !cur.Contains(h) {
			out = append(out, h)
		}
	}
	return out
}

// referenceSwitch picks the live switch to copy state from: the new
// node's successor in the chain, falling back to its predecessor when the
// new node is the tail (§5.2 "Handling special cases"). Only members of
// the degraded chain hold data, so additions are skipped.
func referenceSwitch(next ring.Chain, newSw packet.Addr, degraded ring.Chain) (packet.Addr, bool) {
	idx := -1
	for i, h := range next.Hops {
		if h == newSw {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	for i := idx + 1; i < len(next.Hops); i++ {
		if degraded.Contains(next.Hops[i]) {
			return next.Hops[i], true
		}
	}
	for i := idx - 1; i >= 0; i-- {
		if degraded.Contains(next.Hops[i]) {
			return next.Hops[i], true
		}
	}
	return 0, false
}
