package controller

import (
	"testing"
	"time"

	"netchain/internal/event"
	"netchain/internal/health"
	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/ring"
)

// TestDemoteRestoreReordersChains: demotion moves the gray switch out of
// every tail slot without changing membership or losing data; restore
// re-adopts the ring order.
func TestDemoteRestoreReordersChains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SyncPerItem = 0
	f := newFixture(t, cfg, 4)
	gray := f.tb.Switches[2]

	// Insert a key on a chain whose tail is the gray switch, write a
	// value through the chain, and remember its route.
	var key kv.Key
	var rt Route
	found := false
	for i := uint64(0); i < 4000 && !found; i++ {
		k := kv.KeyFromUint64(i)
		r := f.ctl.Route(k)
		if len(r.Hops) == 3 && r.Hops[2] == gray {
			var err error
			rt, err = f.ctl.Insert(k)
			if err != nil {
				t.Fatal(err)
			}
			key, found = k, true
		}
	}
	if !found {
		t.Fatal("no chain has the gray switch as tail")
	}
	if rep, ok := f.do(t, 0, func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewWrite(ep, qid, query.Route{Group: rt.Group, Hops: rt.Hops}, key, kv.Value("v1"))
	}); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("preload write failed: %+v ok=%v", rep, ok)
	}

	tails := func(sw packet.Addr) int {
		n := 0
		for _, r := range f.ctl.Routes() {
			if len(r.Hops) > 0 && r.Hops[len(r.Hops)-1] == sw {
				n++
			}
		}
		return n
	}
	before := tails(gray)
	if before == 0 {
		t.Fatal("gray switch serves no tails before demotion")
	}

	done := false
	n, err := f.ctl.Demote(gray, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	if !done || n != before {
		t.Fatalf("demote: done=%v migrated=%d want %d", done, n, before)
	}
	if got := tails(gray); got != 0 {
		t.Fatalf("gray switch still tail of %d groups after demotion", got)
	}
	// Membership must be unchanged: the demoted switch stays a replica.
	for g, r := range f.ctl.Routes() {
		ch := ring.Chain{Group: ring.GroupID(g), Hops: r.Hops}
		if len(r.Hops) == 3 && !ch.Contains(gray) {
			t.Fatalf("group %d lost the demoted switch from its chain", g)
		}
	}

	// The moved key still reads correctly from the new tail.
	nrt := f.ctl.Route(key)
	if nrt.Hops[len(nrt.Hops)-1] == gray {
		t.Fatal("route still ends at the demoted switch")
	}
	if rep, ok := f.do(t, 0, func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewRead(ep, qid, query.Route{Group: nrt.Group, Hops: nrt.Hops}, key)
	}); !ok || rep.Status != kv.StatusOK || string(rep.Value) != "v1" {
		t.Fatalf("read after demotion: %+v ok=%v", rep, ok)
	}

	// Restore: ring order comes back.
	done = false
	rn, err := f.ctl.Restore(gray, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	if !done || rn != before {
		t.Fatalf("restore: done=%v migrated=%d want %d", done, rn, before)
	}
	if got := tails(gray); got != before {
		t.Fatalf("restore left %d tails on the switch, want %d", got, before)
	}
}

// TestDemoteFailedSwitchRefused: demotion of a failed-over switch is an
// error — Recover owns that path.
func TestDemoteFailedSwitchRefused(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 2)
	s1 := f.tb.Switches[1]
	if err := f.ctl.HandleFailure(s1, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	if _, err := f.ctl.Demote(s1, nil); err == nil {
		t.Fatal("demote of a failed switch succeeded")
	}
}

// pilotFixture wires a detector + autopilot over the standard fixture,
// with the spare S3 as the recovery pool. mut may adjust the autopilot
// config before construction.
func pilotFixture(t *testing.T, mut func(*AutopilotConfig)) (*fixture, *health.Detector, *Autopilot) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SyncPerItem = 0
	cfg.RuleDelay = time.Millisecond
	f := newFixture(t, cfg, 2)
	det := health.NewDetector(health.Defaults(time.Millisecond))
	now := func() time.Duration { return time.Duration(f.sim.Now()) }
	pcfg := AutopilotConfig{Interval: time.Millisecond, Spares: []packet.Addr{f.tb.Switches[3]}}
	if mut != nil {
		mut(&pcfg)
	}
	ap := NewAutopilot(f.ctl, det, SimScheduler{Sim: f.sim}, now, pcfg)
	for _, sw := range f.tb.Switches {
		det.Track(sw, 0)
	}
	return f, det, ap
}

// feed pumps healthy heartbeats+probes for every switch except the
// excluded ones, advancing the simulated clock.
func feed(f *fixture, det *health.Detector, beats int, every time.Duration,
	rtt map[packet.Addr]time.Duration, skip map[packet.Addr]bool) {
	for i := 0; i < beats; i++ {
		f.sim.RunFor(event.Duration(every))
		now := time.Duration(f.sim.Now())
		for _, sw := range f.tb.Switches {
			if skip[sw] {
				continue
			}
			det.Heartbeat(sw, now, health.Payload{Processed: uint64(i)})
			r := 5 * time.Microsecond
			if rtt != nil {
				if v, ok := rtt[sw]; ok {
					r = v
				}
			}
			det.ProbeReply(sw, now, r)
		}
	}
}

// countActions tallies the repair history by action.
func countActions(ap *Autopilot) map[RepairAction]int {
	out := map[RepairAction]int{}
	for _, ev := range ap.History() {
		out[ev.Action]++
	}
	return out
}

// TestAutopilotFailStopRepairs: heartbeats stop for S1 → the autopilot
// runs fast failover and then recovery onto the spare, hands-free, and
// every chain ends fully repaired.
func TestAutopilotFailStopRepairs(t *testing.T) {
	f, det, ap := pilotFixture(t, nil)
	s1 := f.tb.Switches[1]
	ap.Start()

	hb := time.Millisecond
	feed(f, det, 20, hb, nil, nil) // healthy warmup
	// S1 dies: no more heartbeats, no more probe replies from it.
	f.tb.Net.FailSwitch(s1)
	feed(f, det, 60, hb, nil, map[packet.Addr]bool{s1: true})
	ap.Stop()
	f.sim.Run()

	acts := countActions(ap)
	if acts[ActionFailover] != 1 || acts[ActionRecover] != 1 || acts[ActionRecoverDone] != 1 {
		t.Fatalf("repair history incomplete: %v\n%v", acts, ap.History())
	}
	for g, r := range f.ctl.Routes() {
		if len(r.Hops) != 3 {
			t.Fatalf("group %d not fully re-replicated: %v", g, r.Hops)
		}
		for _, h := range r.Hops {
			if h == s1 {
				t.Fatalf("group %d still routes through the dead switch", g)
			}
		}
	}
}

// TestAutopilotGrayDemotesNotEvicts: sustained probe-RTT inflation on S2
// latches a gray verdict; the autopilot demotes it (no failover, no
// recovery) and restores it once quality recovers.
func TestAutopilotGrayDemotesNotEvicts(t *testing.T) {
	f, det, ap := pilotFixture(t, nil)
	s2 := f.tb.Switches[2]
	ap.Start()

	hb := time.Millisecond
	feed(f, det, 20, hb, nil, nil)
	// Gray: S2's probes come back 40× slow, heartbeats keep flowing.
	feed(f, det, 20, hb, map[packet.Addr]time.Duration{s2: 200 * time.Microsecond}, nil)
	if !ap.Demoted(s2) {
		t.Fatalf("gray switch not demoted; history: %v", ap.History())
	}
	acts := countActions(ap)
	if acts[ActionFailover] != 0 || acts[ActionRecover] != 0 {
		t.Fatalf("gray degradation triggered eviction: %v", acts)
	}
	// Recovery of quality → restore (cooldown must pass first).
	feed(f, det, 60, hb, nil, nil)
	ap.Stop()
	f.sim.Run()
	if ap.Demoted(s2) {
		t.Fatalf("healed switch still demoted; history: %v", ap.History())
	}
	acts = countActions(ap)
	if acts[ActionDemote] != 1 || acts[ActionRestore] != 1 {
		t.Fatalf("expected one demote + one restore: %v\n%v", acts, ap.History())
	}
}

// TestAutopilotBudgetHoldsUnderFlapping: a verdict oscillating every few
// intervals must not thrash migrations — the budget window and per-switch
// cooldown cap the repair count.
func TestAutopilotBudgetHoldsUnderFlapping(t *testing.T) {
	f, det, ap := pilotFixture(t, func(c *AutopilotConfig) {
		c.RepairBudget = 2
		// One window spanning the whole run: the cap is absolute here.
		c.BudgetWindow = 500 * time.Millisecond
		c.Cooldown = 5 * time.Millisecond
	})
	budget := ap.Config().RepairBudget
	s2 := f.tb.Switches[2]
	ap.Start()

	hb := time.Millisecond
	feed(f, det, 20, hb, nil, nil)
	// Flap: quality oscillates fast enough that, unguarded, the loop
	// would demote/restore every few ticks.
	for cycle := 0; cycle < 12; cycle++ {
		feed(f, det, 8, hb, map[packet.Addr]time.Duration{s2: 200 * time.Microsecond}, nil)
		feed(f, det, 8, hb, nil, nil)
	}
	ap.Stop()
	f.sim.Run()

	acts := countActions(ap)
	moving := acts[ActionDemote] + acts[ActionRestore] + acts[ActionRecover]
	if moving > budget {
		t.Fatalf("flapping produced %d data-moving repairs, budget %d:\n%v",
			moving, budget, ap.History())
	}
	if acts[ActionFailover] != 0 {
		t.Fatalf("flapping gray escalated to failover: %v", acts)
	}
	if ap.Deferred() == 0 {
		t.Fatal("no deferred repairs recorded — the flap never pressured the budget")
	}
}

// TestAutopilotReadmittedSwitchRepairsAgain: fail → autonomous repair →
// operator readmits the fixed switch via AddSwitch (which clears the
// controller's failed flag) → heartbeats resume and the autopilot's
// failover latch releases → a second fail-stop is detected and repaired
// exactly like the first.
func TestAutopilotReadmittedSwitchRepairsAgain(t *testing.T) {
	f, det, ap := pilotFixture(t, nil)
	s1 := f.tb.Switches[1]
	ap.Start()
	hb := time.Millisecond

	feed(f, det, 20, hb, nil, nil)
	f.tb.Net.FailSwitch(s1)
	feed(f, det, 60, hb, nil, map[packet.Addr]bool{s1: true})
	if acts := countActions(ap); acts[ActionRecoverDone] != 1 {
		t.Fatalf("first repair incomplete: %v\n%v", acts, ap.History())
	}

	// The box is fixed and readmitted. Its heartbeats resume, the latch
	// clears, and it rejoins the ring with fresh virtual nodes.
	if err := f.tb.Net.RestoreSwitch(s1); err != nil {
		t.Fatal(err)
	}
	feed(f, det, 40, hb, nil, nil)
	done := false
	if _, err := f.ctl.AddSwitch(s1, func() { done = true }); err != nil {
		t.Fatalf("readmission: %v", err)
	}
	// Keep heartbeats flowing while the migration's simulated time
	// passes — real agents don't stop beating during a resize.
	for i := 0; !done && i < 1000; i++ {
		feed(f, det, 1, hb, nil, nil)
	}
	if !done {
		t.Fatal("readmission migration did not finish")
	}
	feed(f, det, 30, hb, nil, nil)

	// The readmitted switch must actually serve again: its neighbors'
	// stale failover rules are gone, so a write through a chain that
	// includes it commits on all three replicas and reads back.
	var key kv.Key
	var rt Route
	foundChain := false
	for i := uint64(5000); i < 9000 && !foundChain; i++ {
		k := kv.KeyFromUint64(i)
		r := f.ctl.Route(k)
		ch := ring.Chain{Hops: r.Hops}
		if len(r.Hops) == 3 && ch.Contains(s1) {
			var err error
			rt, err = f.ctl.Insert(k)
			if err != nil {
				t.Fatal(err)
			}
			key, foundChain = k, true
		}
	}
	if !foundChain {
		t.Fatal("no chain includes the readmitted switch")
	}
	// f.do drains the simulator, which never quiesces while the
	// autopilot ticks — step until the reply lands instead.
	doStep := func(build func(ep query.Endpoint, qid uint64) (*packet.Frame, error)) (query.Reply, bool) {
		f.nextQID++
		qid := f.nextQID
		fr, err := build(f.ep(0), qid)
		if err != nil {
			t.Fatal(err)
		}
		f.tb.Net.Inject(f.tb.Hosts[0], fr)
		for {
			if rep, ok := f.replies[qid]; ok {
				return rep, true
			}
			if !f.sim.Step() {
				return query.Reply{}, false
			}
		}
	}
	if rep, ok := doStep(func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewWrite(ep, qid, query.Route{Group: rt.Group, Hops: rt.Hops}, key, kv.Value("back"))
	}); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("write through readmitted chain: %+v ok=%v", rep, ok)
	}
	if rep, ok := doStep(func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewRead(ep, qid, query.Route{Group: rt.Group, Hops: rt.Hops}, key)
	}); !ok || rep.Status != kv.StatusOK || string(rep.Value) != "back" {
		t.Fatalf("read through readmitted chain: %+v ok=%v", rep, ok)
	}

	// Second failure of the same switch.
	f.tb.Net.FailSwitch(s1)
	feed(f, det, 80, hb, nil, map[packet.Addr]bool{s1: true})
	ap.Stop()
	f.sim.Run()

	acts := countActions(ap)
	if acts[ActionFailover] != 2 || acts[ActionRecoverDone] != 2 {
		t.Fatalf("second failure not repaired: %v\n%v", acts, ap.History())
	}
	for g, r := range f.ctl.Routes() {
		for _, h := range r.Hops {
			if h == s1 {
				t.Fatalf("group %d still routes through the re-dead switch", g)
			}
		}
	}
}

// TestAutopilotBlindnessGuard: when every switch goes silent at once,
// the overwhelmingly likely cause is the monitor's own view going dark —
// the autopilot must not evict the whole cluster on that evidence.
func TestAutopilotBlindnessGuard(t *testing.T) {
	f, det, ap := pilotFixture(t, nil)
	ap.Start()
	hb := time.Millisecond
	feed(f, det, 20, hb, nil, nil)
	// Total silence: nobody heartbeats, nobody answers probes.
	skipAll := map[packet.Addr]bool{}
	for _, sw := range f.tb.Switches {
		skipAll[sw] = true
	}
	feed(f, det, 60, hb, nil, skipAll)
	acts := countActions(ap)
	if acts[ActionFailover] != 0 || acts[ActionRecover] != 0 {
		t.Fatalf("blind autopilot evicted the cluster: %v\n%v", acts, ap.History())
	}
	if ap.Deferred() == 0 {
		t.Fatal("guard never engaged — the silence was not even noticed")
	}
	// Vision returns: no lasting damage, normal operation resumes.
	feed(f, det, 30, hb, nil, nil)
	s1 := f.tb.Switches[1]
	f.tb.Net.FailSwitch(s1)
	feed(f, det, 60, hb, nil, map[packet.Addr]bool{s1: true})
	ap.Stop()
	f.sim.Run()
	acts = countActions(ap)
	if acts[ActionFailover] != 1 || acts[ActionRecoverDone] != 1 {
		t.Fatalf("single failure after blindness not repaired: %v\n%v", acts, ap.History())
	}
}

// TestAutopilotNonMemberFailStopIgnored: switches the detector tracks but
// the ring does not contain — a fabric's transit tier, or the held-out
// spare — going dark is a routing event, not a chain membership event.
// The autopilot must not try to fail over or recover them (chain repair
// on a non-member just loops on "not a member" errors), and a dead spare
// must drop out of the recovery pool rather than poison it.
func TestAutopilotNonMemberFailStopIgnored(t *testing.T) {
	f, det, ap := pilotFixture(t, nil)
	ap.Start()
	hb := time.Millisecond
	s3 := f.tb.Switches[3] // tracked spare, not a ring member
	feed(f, det, 20, hb, nil, nil)
	// The spare goes completely dark: no heartbeats, no probe echoes.
	feed(f, det, 60, hb, nil, map[packet.Addr]bool{s3: true})
	for _, ev := range ap.History() {
		if ev.Switch == s3 {
			t.Fatalf("autopilot ran chain repair on the non-member spare: %v\n%v",
				ev, ap.History())
		}
	}
	// Member repair is unaffected by the gate: S1 dies and is failed over
	// — and the recovery pool correctly falls back to the dead spare only
	// because it is the sole candidate (a thin chain beats none).
	s1 := f.tb.Switches[1]
	f.tb.Net.FailSwitch(s1)
	feed(f, det, 80, hb, nil, map[packet.Addr]bool{s1: true, s3: true})
	ap.Stop()
	f.sim.Run()
	if acts := countActions(ap); acts[ActionFailover] != 1 {
		t.Fatalf("member fail-stop not failed over with gate active: %v\n%v",
			acts, ap.History())
	}
}
