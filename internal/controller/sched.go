package controller

import (
	"time"

	"netchain/internal/event"
)

// SimScheduler drives controller timing from the discrete-event engine.
type SimScheduler struct{ Sim *event.Sim }

// After implements Scheduler on simulated time.
func (s SimScheduler) After(d time.Duration, fn func()) {
	s.Sim.After(event.Duration(d), fn)
}

// Immediate runs callbacks synchronously with zero delay — for unit tests
// that do not model control-plane latency.
type Immediate struct{}

// After implements Scheduler by calling fn inline.
func (Immediate) After(_ time.Duration, fn func()) { fn() }
