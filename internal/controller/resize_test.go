package controller

import (
	"fmt"
	"testing"

	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/ring"
)

// loadKeys inserts n keys and writes distinct values through the chains.
func (f *fixture) loadKeys(t *testing.T, n int) []kv.Key {
	t.Helper()
	keys := make([]kv.Key, n)
	for i := range keys {
		keys[i] = kv.KeyFromUint64(uint64(5000 + i))
		if _, err := f.ctl.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
		if rep, ok := f.write(t, 0, keys[i], fmt.Sprintf("v%d", i)); !ok || rep.Status != kv.StatusOK {
			t.Fatalf("setup write %d: %+v ok=%v", i, rep, ok)
		}
	}
	return keys
}

// verifyExactPlacement checks that every key lives on exactly its ring
// chain's switches, that the served route matches the ring, and that no
// migration freeze was left behind.
func (f *fixture) verifyExactPlacement(t *testing.T, keys []kv.Key) {
	t.Helper()
	for i, k := range keys {
		ch := f.ring.ChainForKey(k)
		rt := f.ctl.Route(k)
		if len(rt.Hops) != len(ch.Hops) {
			t.Fatalf("key %d: route %v != ring chain %v", i, rt.Hops, ch.Hops)
		}
		for j := range ch.Hops {
			if rt.Hops[j] != ch.Hops[j] {
				t.Fatalf("key %d: route %v != ring chain %v", i, rt.Hops, ch.Hops)
			}
		}
		for _, sa := range f.tb.SwitchAddrs() {
			sw, ok := f.tb.Net.Switch(sa)
			if !ok {
				continue
			}
			if ch.Contains(sa) != sw.HasKey(k) {
				t.Fatalf("key %d on %v: inChain=%v hasKey=%v", i, sa, ch.Contains(sa), sw.HasKey(k))
			}
		}
	}
	for _, sa := range f.tb.SwitchAddrs() {
		sw, ok := f.tb.Net.Switch(sa)
		if !ok {
			continue
		}
		for g := 0; g < f.ring.Groups()+16; g++ {
			if sw.WriteFrozen(uint16(g)) {
				t.Fatalf("switch %v left frozen for group %d", sa, g)
			}
		}
	}
}

func TestAddSwitchLiveMigration(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := f.loadKeys(t, 40)
	s3 := f.tb.Switches[3]

	migrated := 0
	f.ctl.OnGroupRecovered = func(ring.GroupID) { migrated++ }
	done := false
	diff, err := f.ctl.AddSwitch(s3, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) != 1 || diff.Added[0] != s3 {
		t.Fatalf("diff.Added = %v", diff.Added)
	}
	created := 0
	for _, d := range diff.Deltas {
		if d.Created() {
			created++
		}
	}
	if created != 8 {
		t.Fatalf("created groups = %d, want 8", created)
	}

	// Mid-migration route stability: before the engine runs, every key's
	// served route must still point at switches that hold its data, even
	// though the ring already moved.
	for i, k := range keys {
		rt := f.ctl.Route(k)
		if len(rt.Hops) == 0 {
			t.Fatalf("key %d: empty mid-migration route", i)
		}
		for _, h := range rt.Hops {
			sw, _ := f.tb.Net.Switch(h)
			if !sw.HasKey(k) {
				t.Fatalf("key %d mid-migration route %v hits %v without the key", i, rt.Hops, h)
			}
		}
	}

	f.sim.Run()
	if !done {
		t.Fatal("resize did not complete")
	}
	if migrated == 0 {
		t.Fatal("no groups migrated")
	}
	if f.ctl.Resizing() {
		t.Fatal("resizing flag stuck")
	}
	// Post-resize placement matches the ring (and therefore the diff)
	// exactly, with donors GC'd.
	f.verifyExactPlacement(t, keys)
	// Data survived and both reads and writes flow on the new layout.
	for i, k := range keys {
		rep, ok := f.read(t, 0, k)
		if !ok || rep.Status != kv.StatusOK || string(rep.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-resize read %d: %+v ok=%v", i, rep, ok)
		}
		if rep, ok := f.write(t, 0, k, fmt.Sprintf("w%d", i)); !ok || rep.Status != kv.StatusOK {
			t.Fatalf("post-resize write %d: %+v ok=%v", i, rep, ok)
		}
	}
	// The new switch really carries load.
	sw3, _ := f.tb.Net.Switch(s3)
	if sw3.ItemCount() == 0 {
		t.Fatal("added switch holds no items")
	}
}

func TestRemoveSwitchDrains(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := f.loadKeys(t, 40)
	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]

	if _, err := f.ctl.AddSwitch(s3, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()

	done := false
	diff, err := f.ctl.RemoveSwitch(s1, func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	retired := 0
	for _, d := range diff.Deltas {
		if d.Retired() {
			retired++
		}
	}
	if retired != 8 {
		t.Fatalf("retired groups = %d, want 8", retired)
	}
	f.sim.Run()
	if !done {
		t.Fatal("scale-in did not complete")
	}
	if f.ring.IsMember(s1) {
		t.Fatal("removed switch still a ring member")
	}
	f.verifyExactPlacement(t, keys)
	// The drained switch holds nothing: it can be powered off.
	sw1, _ := f.tb.Net.Switch(s1)
	if n := sw1.ItemCount(); n != 0 {
		t.Fatalf("drained switch still holds %d items", n)
	}
	for i, k := range keys {
		for _, h := range f.ctl.Route(k).Hops {
			if h == s1 {
				t.Fatalf("key %d still routed through the removed switch", i)
			}
		}
		rep, ok := f.read(t, 0, k)
		if !ok || rep.Status != kv.StatusOK || string(rep.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-drain read %d: %+v ok=%v", i, rep, ok)
		}
		if rep, ok := f.write(t, 0, k, "after"); !ok || rep.Status != kv.StatusOK {
			t.Fatalf("post-drain write %d: %+v ok=%v", i, rep, ok)
		}
	}
}

func TestResizeSessionsDominateDonorVersions(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := f.loadKeys(t, 20)
	s3 := f.tb.Switches[3]

	// Scale out: groups created for S3's virtual nodes absorb keys and get
	// their sessions bumped past the donors'.
	if _, err := f.ctl.AddSwitch(s3, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()

	// Rewrite everything so stored versions carry the new groups' bumped
	// sessions.
	for i, k := range keys {
		if rep, ok := f.write(t, 0, k, fmt.Sprintf("aged%d", i)); !ok || rep.Status != kv.StatusOK {
			t.Fatalf("aged write %d: %+v ok=%v", i, rep, ok)
		}
	}

	// Scale back in: the created groups retire and their keys merge into
	// successor groups whose own sessions lag the donors'.
	done := false
	if _, err := f.ctl.RemoveSwitch(s3, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	if !done {
		t.Fatal("scale-in did not complete")
	}
	// Every key must accept a fresh write AND the write must be visible —
	// if the receiving group's session lagged the donor's, replicas would
	// silently reject the new version and reads would return stale data.
	for i, k := range keys {
		if rep, ok := f.write(t, 0, k, fmt.Sprintf("new%d", i)); !ok || rep.Status != kv.StatusOK {
			t.Fatalf("post-merge write %d: %+v ok=%v", i, rep, ok)
		}
		rep, ok := f.read(t, 0, k)
		if !ok || string(rep.Value) != fmt.Sprintf("new%d", i) {
			t.Fatalf("post-merge read %d: got %q", i, rep.Value)
		}
	}
}

func TestResizeValidationAndExclusion(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 4)
	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]

	if _, err := f.ctl.AddSwitch(s3, nil); err != nil {
		t.Fatal(err)
	}
	// A second resize while one is in flight is rejected.
	if _, err := f.ctl.RemoveSwitch(s1, nil); err == nil {
		t.Fatal("overlapping resize must be rejected")
	}
	f.sim.Run()
	// After completion the next resize is accepted again.
	if _, err := f.ctl.RemoveSwitch(s1, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()

	// Failed switches are not resize targets.
	s2 := f.tb.Switches[2]
	f.tb.Net.FailSwitch(s2)
	if err := f.ctl.HandleFailure(s2, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	if _, err := f.ctl.RemoveSwitch(s2, nil); err == nil {
		t.Fatal("removing a failed switch must point at Recover")
	}
	if _, err := f.ctl.AddSwitch(s2, nil); err == nil {
		t.Fatal("adding a failed switch must be rejected")
	}
}

func TestInsertRefusedMidMigration(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := f.loadKeys(t, 20)
	s3 := f.tb.Switches[3]

	diff, err := f.ctl.AddSwitch(s3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// While migrations are pending, an insert whose ring group is affected
	// by the resize must be refused (a slot installed on the old chain
	// after the copy snapshot would be lost at the flip); a key in an
	// untouched group is admitted as usual.
	var hot, cold kv.Key
	foundHot, foundCold := false, false
	for i := uint64(100000); i < 200000 && (!foundHot || !foundCold); i++ {
		k := kv.KeyFromUint64(i)
		if _, touched := diff.Deltas[f.ring.GroupForKey(k)]; touched && !foundHot {
			hot, foundHot = k, true
		} else if !touched && !foundCold {
			cold, foundCold = k, true
		}
	}
	if !foundHot {
		t.Fatal("no key found in a migrating group")
	}
	if _, err := f.ctl.Insert(hot); err == nil {
		t.Fatal("insert into a migrating group must be refused")
	}
	if foundCold {
		if _, err := f.ctl.Insert(cold); err != nil {
			t.Fatalf("insert into an untouched group refused: %v", err)
		}
	}
	f.sim.Run()
	// After completion the refused insert flows again and lands on the
	// full new chain.
	rt, err := f.ctl.Insert(hot)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rt.Hops {
		sw, _ := f.tb.Net.Switch(h)
		if !sw.HasKey(hot) {
			t.Fatalf("post-resize insert missing slot on %v", h)
		}
	}
	_ = keys
}

func TestGCDuringResizeStaysDeleted(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := f.loadKeys(t, 40)
	s3 := f.tb.Switches[3]

	diff, err := f.ctl.AddSwitch(s3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a key whose ring placement moved to a group created by the
	// resize — the case where the migration would otherwise reinstall it.
	var victim kv.Key
	found := false
	for _, k := range keys {
		if d, ok := diff.Deltas[f.ring.GroupForKey(k)]; ok && d.Created() {
			victim, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no loaded key moved to a created group")
	}
	// The client deletes it while the migration is still pending.
	if err := f.ctl.GC(victim); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()

	// The deletion must win over the move: no slot anywhere, not tracked.
	for _, sa := range f.tb.SwitchAddrs() {
		sw, ok := f.tb.Net.Switch(sa)
		if !ok {
			continue
		}
		if sw.HasKey(victim) {
			t.Fatalf("deleted key resurrected on %v by the resize", sa)
		}
	}
	if n := f.ctl.KeyCount(f.ring.GroupForKey(victim)); n != 0 {
		// Only the victim mapped to this created group in this seed; any
		// tracked key here is the resurrected victim.
		for _, k := range keys {
			if k != victim && f.ring.GroupForKey(k) == f.ring.GroupForKey(victim) {
				n-- // another key legitimately lives here
			}
		}
		if n > 0 {
			t.Fatal("deleted key still tracked by the controller")
		}
	}
}

func TestFailoverDuringResize(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := f.loadKeys(t, 30)
	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]

	done := false
	if _, err := f.ctl.AddSwitch(s3, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	// Fail S1 while the migrations are mid-flight: half the groups have
	// flipped, half have not.
	f.sim.After(5e6, func() { // 5 ms in
		f.tb.Net.FailSwitch(s1)
		if err := f.ctl.HandleFailure(s1, nil); err != nil {
			t.Fatalf("failover during resize: %v", err)
		}
	})
	f.sim.Run()
	if !done {
		t.Fatal("resize did not complete despite the failover")
	}
	// Even groups that flipped AFTER the failure must not have s1
	// re-installed into their serving chain: the engine filters failed
	// switches at flip time, preserving the failover's degradation.
	for g, rt := range f.ctl.Routes() {
		for _, h := range rt.Hops {
			if h == s1 {
				t.Fatalf("group %d serves through the failed switch after the resize", g)
			}
		}
	}
	// Reads must still work for every key through surviving replicas
	// (host 0 hangs off S0, reachable around S1 via the diamond).
	for i, k := range keys {
		rep, ok := f.read(t, 0, k)
		if !ok || rep.Status != kv.StatusOK {
			t.Fatalf("read %d after failover-during-resize: %+v ok=%v", i, rep, ok)
		}
	}
	// Recovery then restores full strength on the post-resize ring.
	if err := f.ctl.Recover(s1, []packet.Addr{s3}, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	for g, rt := range f.ctl.Routes() {
		for _, h := range rt.Hops {
			if h == s1 {
				t.Fatalf("group %d still routes through failed switch after recovery", g)
			}
		}
	}
}
