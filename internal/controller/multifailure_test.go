package controller

import (
	"testing"

	"netchain/internal/kv"
	"netchain/internal/packet"
)

// TestDoubleFailureChainOfOne: a 3-replica chain tolerates f=2 failures
// (§5.1 "NetChain can only handle up to f node failures for a chain of
// f+1 nodes") — after losing two members, the surviving switch serves
// both reads and writes alone.
func TestDoubleFailureChainOfOne(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	k := f.keyWithChain(t, [3]int{0, 1, 2})
	rtOrig, err := f.ctl.Insert(k)
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := f.write(t, 0, k, "v1"); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("setup write: %+v", rep)
	}

	// Fail the middle, then the tail: only the head S0 remains.
	for _, i := range []int{1, 2} {
		sw := f.tb.Switches[i]
		f.tb.Net.FailSwitch(sw)
		if err := f.ctl.HandleFailure(sw, nil); err != nil {
			t.Fatal(err)
		}
		f.sim.Run()
	}

	rt := f.ctl.Route(k)
	if len(rt.Hops) != 1 || rt.Hops[0] != f.tb.Switches[0] {
		t.Fatalf("degraded route = %v", rt.Hops)
	}
	// Writes and reads still complete via the single survivor, even
	// through the ORIGINAL (stale) route.
	if rep, ok := f.writeVia(t, 0, rtOrig, k, "v2"); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("write with both failures: %+v ok=%v", rep, ok)
	}
	if rep, ok := f.read(t, 0, k); !ok || string(rep.Value) != "v2" {
		t.Fatalf("read with both failures: %+v ok=%v", rep, ok)
	}
}

// TestTripleFailureUnavailable: losing the entire chain makes the key
// unavailable — stale-route reads get an explicit Unavailable, writes get
// nothing (clients time out and retry).
func TestTripleFailureUnavailable(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	k := f.keyWithChain(t, [3]int{0, 1, 2})
	rtOrig, _ := f.ctl.Insert(k)
	f.write(t, 2, k, "v1") // client on H2 (attached to S2's side)

	for i := 0; i < 3; i++ {
		sw := f.tb.Switches[i]
		f.tb.Net.FailSwitch(sw)
		f.ctl.HandleFailure(sw, nil)
		f.sim.Run()
	}
	// A read through the stale route must come back Unavailable (the
	// neighbor rule exhausts the chain list, §5.1) — note the client must
	// still be reachable: H2/H3 hang off S2 which is dead, so use H0/H1
	// only if S0 lives... every switch is dead: no reply can route at all.
	// Instead verify the route is empty and the controller refuses further
	// failovers gracefully.
	rt := f.ctl.Route(k)
	if len(rt.Hops) != 0 {
		t.Fatalf("route after total failure = %v", rt.Hops)
	}
	_ = rtOrig
	if err := f.ctl.HandleFailure(f.tb.Switches[0], nil); err == nil {
		t.Fatal("re-failing a failed switch must error")
	}
}

// TestSequentialFailureRecoveryCycles: fail S1 → recover onto S3 → fail
// S3 → recover onto S1's address is impossible (dead), so back onto the
// remaining pool — chains stay full strength and data survives two
// complete cycles.
func TestSequentialFailureRecoveryCycles(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	keys := make([]kv.Key, 10)
	for i := range keys {
		keys[i] = kv.KeyFromUint64(uint64(3000 + i))
		if _, err := f.ctl.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
		f.write(t, 0, keys[i], "gen0")
	}

	// Cycle 1: S1 dies, S3 takes over.
	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]
	f.tb.Net.FailSwitch(s1)
	f.ctl.HandleFailure(s1, nil)
	f.sim.Run()
	if err := f.ctl.Recover(s1, []packet.Addr{s3}, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	for _, k := range keys {
		f.write(t, 0, k, "gen1")
	}

	// Cycle 2: S3 dies too; only S0,S2 remain as replacements.
	f.tb.Net.FailSwitch(s3)
	if err := f.ctl.HandleFailure(s3, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()
	// Recovery cannot restore 3 distinct replicas from 2 live switches:
	// Reassign refuses, leaving degraded-but-correct chains.
	if err := f.ctl.Recover(s3, []packet.Addr{f.tb.Switches[0], f.tb.Switches[2]}, nil); err == nil {
		t.Fatal("recovery without enough distinct switches must fail")
	}
	// With both middle switches dead the diamond fabric is PARTITIONED:
	// S0's side cannot reach S2's side. Chain writes (which span the
	// partition) cannot complete — correctly — but reads are served by the
	// tail alone, so the host co-located with each key's tail still reads.
	for i, k := range keys {
		rt := f.ctl.Route(k)
		if len(rt.Hops) != 2 {
			t.Fatalf("key %d route = %v", i, rt.Hops)
		}
		host := 0
		if rt.Hops[len(rt.Hops)-1] == f.tb.Switches[2] {
			host = 2
		}
		rep, ok := f.read(t, host, k)
		if !ok || rep.Status != kv.StatusOK || string(rep.Value) != "gen1" {
			t.Fatalf("read %d after double cycle: %+v ok=%v", i, rep, ok)
		}
	}
	// A failed replacement pool is rejected outright.
	if err := f.ctl.Recover(s3, []packet.Addr{s1}, nil); err == nil {
		t.Fatal("failed switch in the pool must be rejected")
	}
	if err := f.ctl.Recover(s3, nil, nil); err == nil {
		t.Fatal("empty pool must be rejected")
	}
}
