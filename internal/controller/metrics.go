package controller

import (
	"netchain/internal/telemetry"
)

// RegisterMetrics publishes the control plane's view of the cluster: how
// many switches the ring currently places chains over, and — when an
// autopilot is driving repair — how many repair actions it has executed.
// ap may be nil (a manually-driven controller still exports the gauge).
func RegisterMetrics(reg *telemetry.Registry, c *Controller, ap *Autopilot) {
	reg.Help(telemetry.ControllerSwitches, "switches in the partitioning ring")
	reg.Help(telemetry.ControllerRepairs, "autopilot repair actions executed")
	reg.Collect(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{
			Name:  telemetry.ControllerSwitches,
			Kind:  telemetry.KindGauge,
			Value: float64(len(c.Ring().Switches())),
		})
		if ap != nil {
			emit(telemetry.Sample{
				Name:  telemetry.ControllerRepairs,
				Kind:  telemetry.KindCounter,
				Value: float64(len(ap.History())),
			})
		}
	})
}
