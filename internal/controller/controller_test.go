package controller

import (
	"fmt"
	"testing"
	"time"

	"netchain/internal/event"
	"netchain/internal/kv"
	"netchain/internal/netsim"
	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/ring"
)

// fixture wires the Fig. 8 testbed, a ring over S0..S2 (S3 spare), and a
// controller under simulated time.
type fixture struct {
	sim  *event.Sim
	tb   *netsim.Testbed
	ring *ring.Ring
	ctl  *Controller

	replies map[uint64]query.Reply
	nextQID uint64
}

func newFixture(t *testing.T, cfg Config, vnodes int) *fixture {
	t.Helper()
	sim := event.New()
	tb, err := netsim.NewTestbed(sim, netsim.PaperProfile(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ring.New(ring.Config{VNodesPerSwitch: vnodes, Replicas: 3, Seed: 5},
		[]packet.Addr{tb.Switches[0], tb.Switches[1], tb.Switches[2]})
	if err != nil {
		t.Fatal(err)
	}
	agent := func(a packet.Addr) (Agent, bool) {
		sw, ok := tb.Net.Switch(a)
		if !ok {
			return nil, false
		}
		return LocalAgent{Switch: sw}, true
	}
	ctl, err := New(cfg, r, SimScheduler{Sim: sim}, agent, tb.Net.SwitchNeighbors)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{sim: sim, tb: tb, ring: r, ctl: ctl, replies: map[uint64]query.Reply{}}
	for _, h := range tb.Hosts {
		h := h
		tb.Net.HostRecv(h, func(fr *packet.Frame) {
			rep, err := query.ParseReply(fr)
			if err == nil {
				f.replies[rep.QueryID] = rep
			}
		})
	}
	return f
}

func (f *fixture) ep(host int) query.Endpoint {
	return query.Endpoint{Addr: f.tb.Hosts[host], Port: 4000}
}

// do issues one query and runs the sim to quiescence, returning the reply.
func (f *fixture) do(t *testing.T, host int, build func(ep query.Endpoint, qid uint64) (*packet.Frame, error)) (query.Reply, bool) {
	t.Helper()
	f.nextQID++
	qid := f.nextQID
	fr, err := build(f.ep(host), qid)
	if err != nil {
		t.Fatal(err)
	}
	f.tb.Net.Inject(f.tb.Hosts[host], fr)
	f.sim.Run()
	rep, ok := f.replies[qid]
	return rep, ok
}

func (f *fixture) write(t *testing.T, host int, k kv.Key, v string) (query.Reply, bool) {
	rt := f.ctl.Route(k)
	return f.do(t, host, func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewWrite(ep, qid, query.Route{Group: rt.Group, Hops: rt.Hops}, k, kv.Value(v))
	})
}

func (f *fixture) writeVia(t *testing.T, host int, rt Route, k kv.Key, v string) (query.Reply, bool) {
	return f.do(t, host, func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewWrite(ep, qid, query.Route{Group: rt.Group, Hops: rt.Hops}, k, kv.Value(v))
	})
}

func (f *fixture) read(t *testing.T, host int, k kv.Key) (query.Reply, bool) {
	rt := f.ctl.Route(k)
	return f.do(t, host, func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewRead(ep, qid, query.Route{Group: rt.Group, Hops: rt.Hops}, k)
	})
}

func TestInsertWriteRead(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 4)
	k := kv.KeyFromString("cfg/x")
	rt, err := f.ctl.Insert(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Hops) != 3 {
		t.Fatalf("route = %v", rt)
	}
	for _, hop := range rt.Hops {
		sw, _ := f.tb.Net.Switch(hop)
		if !sw.HasKey(k) {
			t.Fatalf("key not installed on %v", hop)
		}
	}
	if rep, ok := f.write(t, 0, k, "v1"); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("write reply: %+v ok=%v", rep, ok)
	}
	rep, ok := f.read(t, 0, k)
	if !ok || rep.Status != kv.StatusOK || string(rep.Value) != "v1" {
		t.Fatalf("read reply: %+v ok=%v", rep, ok)
	}
}

func TestInsertDuplicateFailsCleanly(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 4)
	k := kv.KeyFromString("dup")
	if _, err := f.ctl.Insert(k); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ctl.Insert(k); err == nil {
		t.Fatal("duplicate insert must fail")
	}
}

func TestGCRemovesSlots(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 4)
	k := kv.KeyFromString("gone")
	rt, _ := f.ctl.Insert(k)
	g := f.ring.GroupForKey(k)
	if f.ctl.KeyCount(g) != 1 {
		t.Fatal("key not tracked")
	}
	if err := f.ctl.GC(k); err != nil {
		t.Fatal(err)
	}
	if f.ctl.KeyCount(g) != 0 {
		t.Fatal("key still tracked after GC")
	}
	for _, hop := range rt.Hops {
		sw, _ := f.tb.Net.Switch(hop)
		if sw.HasKey(k) {
			t.Fatalf("slot still installed on %v", hop)
		}
	}
}

// keyInChainHeadedBy finds a key whose chain is exactly the given order.
func (f *fixture) keyWithChain(t *testing.T, want [3]int) kv.Key {
	t.Helper()
	addrs := [3]packet.Addr{
		f.tb.Switches[want[0]], f.tb.Switches[want[1]], f.tb.Switches[want[2]],
	}
	for i := 0; i < 100000; i++ {
		k := kv.KeyFromUint64(uint64(i))
		ch := f.ring.ChainForKey(k)
		if len(ch.Hops) == 3 && ch.Hops[0] == addrs[0] && ch.Hops[1] == addrs[1] && ch.Hops[2] == addrs[2] {
			return k
		}
	}
	t.Fatalf("no key found with chain %v", want)
	return kv.Key{}
}

func TestFailoverMiddleNode(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	k := f.keyWithChain(t, [3]int{0, 1, 2}) // S0 head, S1 middle, S2 tail
	rtBefore, err := f.ctl.Insert(k)
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := f.write(t, 0, k, "before"); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("pre-failure write: %+v", rep)
	}

	s1 := f.tb.Switches[1]
	f.tb.Net.FailSwitch(s1)
	if err := f.ctl.HandleFailure(s1, nil); err != nil {
		t.Fatal(err)
	}
	f.sim.Run() // let rules install

	// Degraded route excludes S1.
	rt := f.ctl.Route(k)
	if len(rt.Hops) != 2 {
		t.Fatalf("degraded route = %v", rt.Hops)
	}

	// A stale client still using the OLD route must succeed via the
	// neighbor rules.
	if rep, ok := f.writeVia(t, 0, rtBefore, k, "during"); !ok || rep.Status != kv.StatusOK {
		t.Fatalf("stale-route write after failover: %+v ok=%v", rep, ok)
	}
	if rep, ok := f.read(t, 0, k); !ok || string(rep.Value) != "during" {
		t.Fatalf("read after failover: %+v", rep)
	}
	// Double failover of the same switch is rejected.
	if err := f.ctl.HandleFailure(s1, nil); err == nil {
		t.Fatal("second HandleFailure must fail")
	}
}

func TestFailoverHeadBumpsSession(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	k := f.keyWithChain(t, [3]int{1, 0, 2}) // S1 is head
	f.ctl.Insert(k)
	g := f.ring.GroupForKey(k)

	s1 := f.tb.Switches[1]
	f.tb.Net.FailSwitch(s1)
	f.ctl.HandleFailure(s1, nil)
	f.sim.Run()

	if f.ctl.Session(g) != 1 {
		t.Fatalf("session = %d, want 1", f.ctl.Session(g))
	}
	// New head (S0) must stamp the bumped session.
	newHead, _ := f.tb.Net.Switch(f.tb.Switches[0])
	if newHead.Session(uint16(g)) != 1 {
		t.Fatal("new head did not receive the session bump")
	}
	// Writes through the stale route get stamped with session 1.
	rt := Route{Group: uint16(g), Hops: []packet.Addr{s1, f.tb.Switches[0], f.tb.Switches[2]}}
	rep, ok := f.writeVia(t, 2, rt, k, "x")
	if !ok || rep.Status != kv.StatusOK {
		t.Fatalf("write via failed head: %+v ok=%v", rep, ok)
	}
	if rep.Version.Session != 1 {
		t.Fatalf("reply version = %v, want session 1", rep.Version)
	}
}

func TestRecoveryRestoresChainAndData(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	// Insert a handful of keys across all groups.
	keys := make([]kv.Key, 40)
	for i := range keys {
		keys[i] = kv.KeyFromUint64(uint64(1000 + i))
		if _, err := f.ctl.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
		if rep, ok := f.write(t, 0, keys[i], fmt.Sprintf("v%d", i)); !ok || rep.Status != kv.StatusOK {
			t.Fatalf("setup write %d: %+v", i, rep)
		}
	}

	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]
	f.tb.Net.FailSwitch(s1)
	f.ctl.HandleFailure(s1, nil)
	f.sim.Run()

	recovered := 0
	f.ctl.OnGroupRecovered = func(ring.GroupID) { recovered++ }
	doneAt := event.Time(-1)
	if err := f.ctl.Recover(s1, []packet.Addr{s3}, func() { doneAt = f.sim.Now() }); err != nil {
		t.Fatal(err)
	}
	f.sim.Run()

	if doneAt < 0 {
		t.Fatal("recovery did not complete")
	}
	affected := 0
	for g, ch := range f.ctl.Routes() {
		if len(ch.Hops) != 3 {
			t.Fatalf("group %d not restored: %v", g, ch.Hops)
		}
		for _, h := range ch.Hops {
			if h == s1 {
				t.Fatalf("group %d still routed to failed switch", g)
			}
		}
		for _, h := range ch.Hops {
			if h == s3 {
				affected++
				break
			}
		}
	}
	if recovered == 0 || affected != recovered {
		t.Fatalf("recovered groups = %d, chains w/ S3 = %d", recovered, affected)
	}

	// Data must be intact through the new chains.
	for i, k := range keys {
		rep, ok := f.read(t, 0, k)
		if !ok || rep.Status != kv.StatusOK || string(rep.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("post-recovery read %d: %+v ok=%v", i, rep, ok)
		}
	}
	// S3 holds synced state for chains it joined.
	sw3, _ := f.tb.Net.Switch(s3)
	if sw3.ItemCount() == 0 {
		t.Fatal("replacement switch holds no items")
	}
	// Writes keep flowing and versions stay monotonic.
	for i, k := range keys {
		rep, ok := f.write(t, 0, k, fmt.Sprintf("w%d", i))
		if !ok || rep.Status != kv.StatusOK {
			t.Fatalf("post-recovery write %d: %+v", i, rep)
		}
	}
}

func TestRecoverBeforeFailoverRejected(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 4)
	if err := f.ctl.Recover(f.tb.Switches[1], []packet.Addr{f.tb.Switches[3]}, nil); err == nil {
		t.Fatal("recover without failover must be rejected")
	}
}

func TestRecoveryWithPreSync(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PreSync = true
	cfg.SyncPerItem = time.Millisecond
	f := newFixture(t, cfg, 4)
	k := kv.KeyFromString("presync")
	f.ctl.Insert(k)
	f.write(t, 0, k, "v")

	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]
	f.tb.Net.FailSwitch(s1)
	f.ctl.HandleFailure(s1, nil)
	f.sim.Run()
	done := false
	f.ctl.Recover(s1, []packet.Addr{s3}, func() { done = true })
	f.sim.Run()
	if !done {
		t.Fatal("pre-sync recovery did not finish")
	}
	if rep, ok := f.read(t, 0, k); !ok || string(rep.Value) != "v" {
		t.Fatalf("read after pre-sync recovery: %+v", rep)
	}
}

func TestTailFailureReadsFailOverToPredecessor(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	k := f.keyWithChain(t, [3]int{0, 1, 2}) // S2 tail
	rtBefore, _ := f.ctl.Insert(k)
	f.write(t, 0, k, "tailv")

	s2 := f.tb.Switches[2]
	f.tb.Net.FailSwitch(s2)
	f.ctl.HandleFailure(s2, nil)
	f.sim.Run()

	// Stale-route read (addressed to dead tail) must be redirected to S1.
	rep, ok := f.do(t, 0, func(ep query.Endpoint, qid uint64) (*packet.Frame, error) {
		return query.NewRead(ep, qid, query.Route{Group: rtBefore.Group, Hops: rtBefore.Hops}, k)
	})
	if !ok || rep.Status != kv.StatusOK || string(rep.Value) != "tailv" {
		t.Fatalf("stale read after tail failure: %+v ok=%v", rep, ok)
	}
	// Stale-route write must be completed on the chain's behalf.
	rep, ok = f.writeVia(t, 0, rtBefore, k, "tailv2")
	if !ok || rep.Status != kv.StatusOK {
		t.Fatalf("stale write after tail failure: %+v ok=%v", rep, ok)
	}
	if rep2, _ := f.read(t, 0, k); string(rep2.Value) != "tailv2" {
		t.Fatalf("read after stale write: %+v", rep2)
	}
}

func TestSessionMonotonicAcrossFailoverAndRecovery(t *testing.T) {
	f := newFixture(t, DefaultConfig(), 8)
	k := f.keyWithChain(t, [3]int{1, 0, 2})
	f.ctl.Insert(k)
	g := f.ring.GroupForKey(k)

	s1, s3 := f.tb.Switches[1], f.tb.Switches[3]
	f.tb.Net.FailSwitch(s1)
	f.ctl.HandleFailure(s1, nil) // head change: session 1
	f.sim.Run()
	f.ctl.Recover(s1, []packet.Addr{s3}, nil)
	f.sim.Run()

	// S3 takes S1's head position: second head change, session 2.
	if got := f.ctl.Session(g); got != 2 {
		t.Fatalf("session = %d, want 2", got)
	}
	sw3, _ := f.tb.Net.Switch(s3)
	if sw3.Session(uint16(g)) != 2 {
		t.Fatal("recovered head lacks bumped session")
	}
}
