package controller

import (
	"fmt"
	"sort"

	"netchain/internal/packet"
	"netchain/internal/ring"
)

// Gray-degradation handling: a switch that is alive but slow/lossy is
// DEMOTED, not evicted. Reads are served by each chain's tail, so moving
// the gray switch out of the tail position drains read traffic off it
// while it keeps its replica role (the chain stays at f+1 copies and the
// write path still flows through it — chain replication needs every
// replica on the write path regardless of order). Eviction would cost a
// full state re-sync and, for a switch that is merely degraded, trade a
// latency problem for an availability one.
//
// Reordering a serving chain is only safe behind the same two-phase guard
// the resize migrations use: freeze fresh writes on every serving member,
// wait one rule delay so in-flight ordered writes drain to all replicas
// (after which every member holds an identical committed prefix), then
// flip the chain and unfreeze. Without the drain, a write acked by the
// old tail but not yet applied at the new one would be invisible to the
// first post-flip read — a stale read.

// Demote moves sw out of the tail position of every virtual group it
// currently serves as tail (chains of at least 3 hops, so the head never
// changes). It returns the number of groups being migrated; done fires
// after the last one. The serving order diverges from the ring order
// until Restore.
func (c *Controller) Demote(sw packet.Addr, done func()) (int, error) {
	plan := func(old ring.Chain) (ring.Chain, bool) {
		n := len(old.Hops)
		if n < 3 || old.Tail() != sw {
			return ring.Chain{}, false
		}
		next := ring.Chain{Group: old.Group, Hops: append([]packet.Addr(nil), old.Hops...)}
		next.Hops[n-1], next.Hops[n-2] = next.Hops[n-2], next.Hops[n-1]
		return next, true
	}
	return c.reorderChains(sw, plan, done)
}

// Restore re-adopts the ring's chain order for every group whose serving
// chain contains sw and is an order-permutation of the (live) ring chain
// — undoing a prior Demote once the switch is healthy again. Groups whose
// membership diverged from the ring (failover, recovery) are skipped;
// Recover owns those.
func (c *Controller) Restore(sw packet.Addr, done func()) (int, error) {
	plan := func(old ring.Chain) (ring.Chain, bool) {
		if !old.Contains(sw) {
			return ring.Chain{}, false
		}
		want, err := c.ring.ChainForGroup(old.Group)
		if err != nil {
			return ring.Chain{}, false
		}
		want = c.liveChainLocked(want)
		if want.Equal(old) || !sameMembers(old, want) {
			return ring.Chain{}, false
		}
		return want, true
	}
	return c.reorderChains(sw, plan, done)
}

// reorderChains runs pure order-permutation migrations over every group
// whose serving chain plan() rewrites. It shares the resize exclusivity
// flag so a reorder and a planned resize can never interleave. plan is
// always invoked with c.mu held.
func (c *Controller) reorderChains(sw packet.Addr,
	plan func(old ring.Chain) (ring.Chain, bool), done func()) (int, error) {
	c.mu.Lock()
	if c.resizing {
		c.mu.Unlock()
		return 0, fmt.Errorf("controller: reconfiguration already in progress")
	}
	if c.failed[sw] {
		c.mu.Unlock()
		return 0, fmt.Errorf("controller: %v is failed; use Recover", sw)
	}
	var affected []ring.GroupID
	for g, ch := range c.chains {
		if _, ok := plan(chWithGroup(ch, g)); ok {
			affected = append(affected, g)
		}
	}
	if len(affected) == 0 {
		c.mu.Unlock()
		if done != nil {
			c.sched.After(0, done)
		}
		return 0, nil
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	c.resizing = true
	c.mu.Unlock()

	c.runMigrations(len(affected), func(i int) *migration {
		g := affected[i]
		// Re-plan at the group's turn: a failover that degraded the chain
		// in the meantime may have made the reorder moot.
		c.mu.Lock()
		old := chWithGroup(c.chains[g], g)
		next, ok := plan(old)
		c.mu.Unlock()
		if !ok {
			return nil
		}
		return c.buildReorderMigration(g, old, next)
	}, func() {
		c.mu.Lock()
		c.resizing = false
		c.mu.Unlock()
		if done != nil {
			done()
		}
	})
	return len(affected), nil
}

// buildReorderMigration plans one group's order-only migration: freeze
// fresh writes on every serving member (any of them may act as head
// behind failover rules), let the in-flight ordered writes drain for one
// rule delay, flip, unfreeze. No data moves and the member set is
// unchanged, so there is no sync step and no session bump — the drain
// guarantees every member holds the same committed prefix at the flip.
func (c *Controller) buildReorderMigration(g ring.GroupID, old, next ring.Chain) *migration {
	freeze := func(frozen bool) {
		for _, h := range old.Hops {
			if a, ok := c.agent(h); ok {
				_ = a.FreezeWrites(uint16(g), frozen)
			}
		}
	}
	return &migration{
		group:    g,
		old:      old,
		next:     next,
		stopWait: c.cfg.RuleDelay,
		stop:     func() { freeze(true) },
		activate: func() {
			// Writes stay frozen for one more rule delay after the
			// flip: reads already in flight toward the pre-flip tail
			// (including nemesis-duplicated stragglers) must drain
			// before any post-flip write can apply, or a stale-routed
			// read at the old tail could observe a write that a
			// later read at the new tail has not seen yet — the same
			// reasoning behind the resize's delayed donor-slot GC.
			c.sched.After(c.cfg.RuleDelay, func() { freeze(false) })
		},
	}
}

// chWithGroup stamps the map key's group id onto a chain value (serving
// chains store zero-valued Group fields in some construction paths).
func chWithGroup(ch ring.Chain, g ring.GroupID) ring.Chain {
	ch.Group = g
	return ch
}

// sameMembers reports whether two chains contain exactly the same
// switches, order aside.
func sameMembers(a, b ring.Chain) bool {
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for _, h := range a.Hops {
		if !b.Contains(h) {
			return false
		}
	}
	return true
}
