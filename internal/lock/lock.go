// Package lock provides distributed exclusive locks and a two-phase-
// locking transaction executor — the §8.5 application. Locks map onto
// NetChain compare-and-swap queries (the Tofino CAS primitive: "a lock can
// only be released by the client that owns the lock by comparing the
// client ID in the value field") or onto the baseline's ephemeral nodes.
//
// The transaction executor implements the evaluation's workload: each
// transaction try-locks ten keys (one hot, nine cold), executes for a
// fixed in-memory duration, then releases — aborting and retrying when any
// lock is unavailable, which is exactly the contention cost the paper
// measures as the contention index grows.
package lock

import (
	"math/rand"

	"netchain/internal/event"
	"netchain/internal/kv"
	"netchain/internal/query"
	"netchain/internal/simclient"
	"netchain/internal/workload"
	"netchain/internal/zab"
)

// Service is a try-lock provider.
type Service interface {
	// Acquire attempts to take lock for owner; ok reports success.
	Acquire(lock kv.Key, owner uint64, done func(ok bool, err error))
	// Release returns the lock if held by owner.
	Release(lock kv.Key, owner uint64, done func(ok bool, err error))
}

// NetChainLocks implements Service over a NetChain client using CAS
// queries. Lock free = owner field 0.
type NetChainLocks struct {
	Client *simclient.Client
}

// Acquire CASes 0 → owner. A CASFail whose stored owner is already us
// counts as success: our earlier reply was lost and the retry must be
// benign (§4.3).
func (l NetChainLocks) Acquire(lock kv.Key, owner uint64, done func(bool, error)) {
	l.Client.CAS(lock, 0, query.OwnerValue(owner, nil), func(res simclient.Result) {
		switch {
		case res.Err != nil:
			done(false, res.Err)
		case res.Status == kv.StatusOK:
			done(true, nil)
		case res.Status == kv.StatusCASFail && query.Owner(res.Value) == owner:
			done(true, nil)
		default:
			done(false, nil)
		}
	})
}

// Release CASes owner → 0; a CASFail with stored owner 0 means a retried
// release already landed.
func (l NetChainLocks) Release(lock kv.Key, owner uint64, done func(bool, error)) {
	l.Client.CAS(lock, owner, query.OwnerValue(0, nil), func(res simclient.Result) {
		switch {
		case res.Err != nil:
			done(false, res.Err)
		case res.Status == kv.StatusOK:
			done(true, nil)
		case res.Status == kv.StatusCASFail && query.Owner(res.Value) == 0:
			done(true, nil)
		default:
			done(false, nil)
		}
	})
}

// ZabLocks implements Service over the baseline cluster's ephemeral-node
// locks (Curator-style, §8.5).
type ZabLocks struct {
	Cluster *zab.Cluster
}

func (l ZabLocks) Acquire(lock kv.Key, owner uint64, done func(bool, error)) {
	l.Cluster.Acquire(lock, owner, done)
}

func (l ZabLocks) Release(lock kv.Key, owner uint64, done func(bool, error)) {
	l.Cluster.Release(lock, owner, done)
}

// ExecutorConfig tunes a transaction client.
type ExecutorConfig struct {
	// ExecTime is the in-memory transaction execution time while holding
	// all locks (§6 cites 100 µs transactions).
	ExecTime event.Time
	// BackoffMax is the maximum random retry delay after an abort.
	BackoffMax event.Time
	// Seed drives backoff randomness.
	Seed int64
}

// DefaultExecutorConfig mirrors §6's 100 µs in-memory transactions.
func DefaultExecutorConfig() ExecutorConfig {
	return ExecutorConfig{
		ExecTime:   event.Duration(100_000),
		BackoffMax: event.Duration(200_000),
		Seed:       1,
	}
}

// Executor runs two-phase-locking transactions in a closed loop: acquire
// every lock of the next transaction in parallel (try-lock), execute,
// release. Any failed acquire aborts the attempt: held locks are
// released, the executor backs off and retries the same transaction.
type Executor struct {
	sim   *event.Sim
	svc   Service
	wl    *workload.TxnWorkload
	keys  []kv.Key
	owner uint64
	cfg   ExecutorConfig
	rng   *rand.Rand

	running bool

	// Committed counts completed transactions; Aborts counts attempts
	// that failed to take all locks.
	Committed uint64
	Aborts    uint64
}

// NewExecutor builds a transaction client. keys maps workload lock
// indexes to key names; owner must be unique per client and non-zero.
func NewExecutor(sim *event.Sim, svc Service, wl *workload.TxnWorkload,
	keys []kv.Key, owner uint64, cfg ExecutorConfig) *Executor {
	if owner == 0 {
		panic("lock: owner must be non-zero")
	}
	return &Executor{
		sim: sim, svc: svc, wl: wl, keys: keys, owner: owner, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed ^ int64(owner))),
	}
}

// Start begins the closed transaction loop until Stop.
func (e *Executor) Start() {
	e.running = true
	e.nextTxn()
}

// Stop halts the loop after the current transaction attempt.
func (e *Executor) Stop() { e.running = false }

func (e *Executor) nextTxn() {
	if !e.running {
		return
	}
	txn := e.wl.Next()
	e.attempt(txn)
}

func (e *Executor) attempt(txn workload.Transaction) {
	if !e.running {
		return
	}
	n := len(txn.Locks)
	results := make([]bool, n)
	doneCount := 0
	for i, li := range txn.Locks {
		i, li := i, li
		e.svc.Acquire(e.keys[li], e.owner, func(ok bool, err error) {
			results[i] = ok && err == nil
			doneCount++
			if doneCount == n {
				e.acquired(txn, results)
			}
		})
	}
}

func (e *Executor) acquired(txn workload.Transaction, results []bool) {
	all := true
	for _, ok := range results {
		if !ok {
			all = false
			break
		}
	}
	if !all {
		e.Aborts++
		// Release whatever we hold, then back off and retry the txn.
		held := 0
		for _, ok := range results {
			if ok {
				held++
			}
		}
		retry := func() {
			backoff := event.Time(0)
			if e.cfg.BackoffMax > 0 {
				backoff = event.Time(e.rng.Int63n(int64(e.cfg.BackoffMax)))
			}
			e.sim.After(backoff, func() { e.attempt(txn) })
		}
		if held == 0 {
			retry()
			return
		}
		releases := 0
		for i, ok := range results {
			if !ok {
				continue
			}
			e.svc.Release(e.keys[txn.Locks[i]], e.owner, func(bool, error) {
				releases++
				if releases == held {
					retry()
				}
			})
		}
		return
	}
	// All locks held: execute, then release everything.
	e.sim.After(e.cfg.ExecTime, func() {
		releases := 0
		for _, li := range txn.Locks {
			e.svc.Release(e.keys[li], e.owner, func(bool, error) {
				releases++
				if releases == len(txn.Locks) {
					e.Committed++
					e.nextTxn()
				}
			})
		}
	})
}
