package lock

import (
	"testing"

	"netchain/internal/controller"
	"netchain/internal/event"
	"netchain/internal/kv"
	"netchain/internal/netsim"
	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/ring"
	"netchain/internal/simclient"
	"netchain/internal/workload"
	"netchain/internal/zab"
)

type rig struct {
	sim *event.Sim
	tb  *netsim.Testbed
	ctl *controller.Controller
	mux *simclient.Mux
}

func newRig(t *testing.T) *rig {
	t.Helper()
	sim := event.New()
	tb, err := netsim.NewTestbed(sim, netsim.PaperProfile(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ring.New(ring.Config{VNodesPerSwitch: 4, Replicas: 3, Seed: 5},
		[]packet.Addr{tb.Switches[0], tb.Switches[1], tb.Switches[2]})
	if err != nil {
		t.Fatal(err)
	}
	agent := func(a packet.Addr) (controller.Agent, bool) {
		sw, ok := tb.Net.Switch(a)
		if !ok {
			return nil, false
		}
		return controller.LocalAgent{Switch: sw}, true
	}
	ctl, err := controller.New(controller.DefaultConfig(), r,
		controller.SimScheduler{Sim: sim}, agent, tb.Net.SwitchNeighbors)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := simclient.NewMux(sim, tb.Net, tb.Hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	return &rig{sim: sim, tb: tb, ctl: ctl, mux: mux}
}

func (r *rig) newLockService(t *testing.T) NetChainLocks {
	t.Helper()
	dir := func(k kv.Key) query.Route {
		rt := r.ctl.Route(k)
		return query.Route{Group: rt.Group, Hops: rt.Hops}
	}
	c, err := r.mux.NewClient(simclient.DefaultConfig(), dir)
	if err != nil {
		t.Fatal(err)
	}
	return NetChainLocks{Client: c}
}

func (r *rig) installLocks(t *testing.T, n int) []kv.Key {
	t.Helper()
	keys := make([]kv.Key, n)
	for i := range keys {
		keys[i] = kv.KeyFromUint64(uint64(5000 + i))
		if _, err := r.ctl.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestNetChainLockMutualExclusion(t *testing.T) {
	r := newRig(t)
	svc := r.newLockService(t)
	keys := r.installLocks(t, 1)

	var trace []bool
	svc.Acquire(keys[0], 1, func(ok bool, err error) {
		trace = append(trace, ok)
		svc.Acquire(keys[0], 2, func(ok bool, err error) {
			trace = append(trace, ok) // must fail: held by 1
			svc.Release(keys[0], 2, func(ok bool, err error) {
				trace = append(trace, ok) // must fail: not owner
				svc.Release(keys[0], 1, func(ok bool, err error) {
					trace = append(trace, ok)
					svc.Acquire(keys[0], 2, func(ok bool, err error) {
						trace = append(trace, ok) // now free
					})
				})
			})
		})
	})
	r.sim.Run()
	want := []bool{true, false, false, true, true}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v (full %v)", i, trace[i], want[i], trace)
		}
	}
}

func TestNetChainLockIdempotentRetry(t *testing.T) {
	r := newRig(t)
	svc := r.newLockService(t)
	keys := r.installLocks(t, 1)

	// Acquire, then acquire again as the same owner (simulating a retry
	// after a lost reply): must report success.
	var second bool
	svc.Acquire(keys[0], 7, func(ok bool, err error) {
		svc.Acquire(keys[0], 7, func(ok bool, err error) { second = ok })
	})
	r.sim.Run()
	if !second {
		t.Fatal("same-owner re-acquire must succeed (benign retry)")
	}
	// Release twice: second release sees owner 0 and counts as done.
	var rel2 bool
	svc.Release(keys[0], 7, func(bool, error) {
		svc.Release(keys[0], 7, func(ok bool, err error) { rel2 = ok })
	})
	r.sim.Run()
	if !rel2 {
		t.Fatal("repeated release must be benign")
	}
}

func TestExecutorCommitsTransactions(t *testing.T) {
	r := newRig(t)
	svc := r.newLockService(t)
	wl, err := workload.NewTxnWorkload(0.01, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := r.installLocks(t, wl.TotalKeys())

	cfg := DefaultExecutorConfig()
	cfg.ExecTime = event.Duration(10_000)
	ex := NewExecutor(r.sim, svc, wl, keys, 1, cfg)
	ex.Start()
	r.sim.After(event.Duration(20e6), ex.Stop) // 20 ms
	r.sim.Run()

	if ex.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	// Single client, low contention: no aborts expected.
	if ex.Aborts > ex.Committed/10 {
		t.Fatalf("aborts = %d vs committed = %d", ex.Aborts, ex.Committed)
	}
	// All locks must be free at quiescence.
	for _, k := range keys[:20] {
		sw, _ := r.tb.Net.Switch(r.ctl.Route(k).Hops[len(r.ctl.Route(k).Hops)-1])
		it, err := sw.ReadItem(k)
		if err == nil && query.Owner(it.Value) != 0 {
			t.Fatalf("lock %v still held by %d", k, query.Owner(it.Value))
		}
	}
}

func TestExecutorContentionCausesAborts(t *testing.T) {
	r := newRig(t)
	wl, err := workload.NewTxnWorkload(1, 200, 3) // single hot lock
	if err != nil {
		t.Fatal(err)
	}
	keys := r.installLocks(t, wl.TotalKeys())

	execs := make([]*Executor, 8)
	for i := range execs {
		svc := r.newLockService(t)
		cfg := DefaultExecutorConfig()
		cfg.ExecTime = event.Duration(50_000)
		cfg.Seed = int64(i)
		execs[i] = NewExecutor(r.sim, svc, wl, keys, uint64(i+1), cfg)
		execs[i].Start()
	}
	r.sim.After(event.Duration(50e6), func() {
		for _, ex := range execs {
			ex.Stop()
		}
	})
	r.sim.Run()

	var committed, aborts uint64
	for _, ex := range execs {
		committed += ex.Committed
		aborts += ex.Aborts
	}
	if committed == 0 {
		t.Fatal("no transactions committed under contention")
	}
	if aborts == 0 {
		t.Fatal("full contention must cause aborts")
	}
	// Mutual exclusion on the hot lock bounds commit rate by exec time:
	// 50 ms / 50 µs = 1000 max.
	if committed > 1100 {
		t.Fatalf("committed = %d exceeds serialization bound", committed)
	}
}

func TestZabLocksService(t *testing.T) {
	sim := event.New()
	cl, err := zab.NewCluster(sim, zab.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := ZabLocks{Cluster: cl}
	wl, _ := workload.NewTxnWorkload(0.1, 100, 5)
	keys := make([]kv.Key, wl.TotalKeys())
	for i := range keys {
		keys[i] = kv.KeyFromUint64(uint64(i))
	}
	ex := NewExecutor(sim, svc, wl, keys, 1, DefaultExecutorConfig())
	ex.Start()
	sim.After(event.Duration(100e6), ex.Stop) // 100 ms
	sim.Run()
	if ex.Committed == 0 {
		t.Fatal("no baseline transactions committed")
	}
	// ZooKeeper lock ops cost ~2.4 ms: a single client commits only a few
	// dozen transactions in 100 ms — orders below NetChain.
	if ex.Committed > 100 {
		t.Fatalf("baseline committed = %d, implausibly fast", ex.Committed)
	}
}

func TestExecutorZeroOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero owner must panic")
		}
	}()
	NewExecutor(event.New(), ZabLocks{}, nil, nil, 0, DefaultExecutorConfig())
}
