package relay

import (
	"net"

	"netchain/internal/packet"
)

// Multicast group addressing, in the style of cynix/multicast-relay's
// endpoint plumbing: each NetChain virtual group maps deterministically
// onto one administratively-scoped IPv4 multicast group, so a subscriber
// derives its join set straight from the directory's key→group ring with
// no extra lookup round.

// McastPort is the UDP port event frames are multicast on. 0x4e45 spells
// "NE" (NetChain events); distinct from packet.Port so a host can run a
// switch and a subscriber side by side.
const McastPort = 0x4e45

// GroupAddr maps virtual group g into the 239.78.0.0/16 organization-local
// scope ("N" = 78): one multicast group per virtual group.
func GroupAddr(g uint16) packet.Addr {
	return packet.AddrFrom4(239, 78, byte(g>>8), byte(g))
}

// GroupUDP returns the real multicast UDP endpoint for virtual group g.
func GroupUDP(g uint16) *net.UDPAddr {
	o := GroupAddr(g).Octets()
	return &net.UDPAddr{IP: net.IPv4(o[0], o[1], o[2], o[3]), Port: McastPort}
}

// epKey packs a subscriber endpoint into one comparable integer
// (host<<16|port, as in SNIPPET 3's Endpoint.Key) for lease bookkeeping.
func epKey(ep *net.UDPAddr) uint64 {
	var host uint32
	if ip4 := ep.IP.To4(); ip4 != nil {
		host = uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])
	}
	return uint64(host)<<16 | uint64(uint16(ep.Port))
}
