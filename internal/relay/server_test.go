package relay

import (
	"net"
	"sync"
	"testing"
	"time"

	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/query"
)

// fakeTail sends OpEvent frames at the relay like a switch agent would.
type fakeTail struct {
	t    *testing.T
	conn *net.UDPConn
	dst  *net.UDPAddr
}

func newFakeTail(t *testing.T, dst *net.UDPAddr) *fakeTail {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &fakeTail{t: t, conn: conn, dst: dst}
}

func (ft *fakeTail) emit(ev query.Event) {
	ft.t.Helper()
	f := query.NewEvent(packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 0, 255, 1), packet.Port, packet.Port, ev)
	defer packet.PutFrame(f)
	buf, err := f.Serialize(nil)
	if err != nil {
		ft.t.Fatal(err)
	}
	if _, err := ft.conn.WriteToUDP(buf, ft.dst); err != nil {
		ft.t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestUnicastFanOutSequencesAndDedupes(t *testing.T) {
	srv, err := Start(Config{Addr: packet.AddrFrom4(10, 0, 255, 1), Mode: ModeUnicast})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	var got []query.Event
	sub, err := Subscribe(ModeUnicast, srv.ControlEndpoint(), []uint16{7}, func(ev query.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	waitFor(t, func() bool { return srv.Stats().Subscribers == 1 }, "lease registration")
	if sub.Acked() == 0 {
		t.Fatal("subscribe must be acked")
	}

	tail := newFakeTail(t, srv.IngestEndpoint())
	k := kv.KeyFromString("cfg")
	tail.emit(query.Event{Key: k, Value: kv.Value("a"), Version: kv.Version{Seq: 1}, Group: 7})
	tail.emit(query.Event{Key: k, Value: kv.Value("a"), Version: kv.Version{Seq: 1}, Group: 7}) // replayed tail re-ack
	tail.emit(query.Event{Key: k, Value: kv.Value("b"), Version: kv.Version{Seq: 2}, Group: 7})
	tail.emit(query.Event{Key: k, Version: kv.Version{Seq: 3}, Group: 7, Deleted: true})

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) >= 3 }, "event delivery")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("delivered %d events, want 3 (duplicate suppressed): %+v", len(got), got)
	}
	for i, ev := range got {
		if ev.StreamSeq != uint64(i+1) {
			t.Fatalf("event %d stream seq = %d, want %d", i, ev.StreamSeq, i+1)
		}
	}
	if !got[2].Deleted || got[2].Version.Seq != 3 {
		t.Fatalf("delete event = %+v", got[2])
	}
	st := srv.Stats()
	if st.EventsIn != 4 || st.EventsDup != 1 || st.EventsOut != 3 || st.EgressDatagrams != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnicastGroupIsolationAndUnsubscribe(t *testing.T) {
	srv, err := Start(Config{Addr: packet.AddrFrom4(10, 0, 255, 1), Mode: ModeUnicast})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var n7, n9 atomic64
	sub7, err := Subscribe(ModeUnicast, srv.ControlEndpoint(), []uint16{7}, func(query.Event) { n7.add() })
	if err != nil {
		t.Fatal(err)
	}
	defer sub7.Close()
	sub9, err := Subscribe(ModeUnicast, srv.ControlEndpoint(), []uint16{9}, func(query.Event) { n9.add() })
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().Subscribers == 2 }, "two leases")

	tail := newFakeTail(t, srv.IngestEndpoint())
	tail.emit(query.Event{Key: kv.KeyFromUint64(1), Value: kv.Value("x"), Version: kv.Version{Seq: 1}, Group: 7})
	waitFor(t, func() bool { return n7.get() == 1 }, "group 7 delivery")
	if n9.get() != 0 {
		t.Fatal("group 9 subscriber must not see group 7 events")
	}

	sub9.Close()
	waitFor(t, func() bool { return srv.Stats().Subscribers == 1 }, "unsubscribe")
}

// Multicast round-trip, skipped where the environment cannot join groups.
func TestMulticastFanOut(t *testing.T) {
	srv, err := Start(Config{Addr: packet.AddrFrom4(10, 0, 255, 1), Mode: ModeMulticast})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	var got []query.Event
	sub, err := Subscribe(ModeMulticast, nil, []uint16{3}, func(ev query.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Skipf("multicast unavailable here: %v", err)
	}
	defer sub.Close()

	tail := newFakeTail(t, srv.IngestEndpoint())
	deadline := time.Now().Add(800 * time.Millisecond)
	seq := uint64(0)
	for time.Now().Before(deadline) {
		seq++
		tail.emit(query.Event{Key: kv.KeyFromUint64(seq), Value: kv.Value("v"), Version: kv.Version{Seq: 1}, Group: 3})
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Skip("multicast loopback not routed in this environment")
	}
	// One egress datagram per event regardless of how many subscribers
	// could have joined — the scale-free property under test.
	if st := srv.Stats(); st.EgressDatagrams != st.EventsOut {
		t.Fatalf("multicast egress %d != events out %d", st.EgressDatagrams, st.EventsOut)
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) add()        { a.mu.Lock(); a.n++; a.mu.Unlock() }
func (a *atomic64) get() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
