package relay

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/transport"
)

// Conn is a subscriber's event intake: it joins the multicast groups for
// the watched virtual groups (ModeMulticast) or leases a unicast
// subscription at the relay's control endpoint and keeps it renewed
// (ModeUnicast). Decoded events are handed to the deliver callback on the
// receive goroutine(s); the watch engine behind it is lock-protected and
// cheap, so no extra queue sits in between.
type Conn struct {
	mode   Mode
	ctl    *net.UDPAddr
	groups []uint16

	conn   *net.UDPConn   // unicast: control + event intake
	mconns []*net.UDPConn // multicast: one joined socket per group

	renewEvery time.Duration
	fault      transport.FaultPipe

	received atomic.Uint64
	acks     atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// SubOption tunes a subscriber Conn.
type SubOption func(*Conn)

// WithRenewEvery sets the unicast lease renew cadence. Default is
// DefaultLeaseTTL/3; a relay configured with a shorter LeaseTTL needs
// its subscribers renewing at TTL/3, or a relay restart (which loses the
// lease table) silences them until the next slow renew.
func WithRenewEvery(d time.Duration) SubOption {
	return func(c *Conn) {
		if d > 0 {
			c.renewEvery = d
		}
	}
}

// WithSubFaults routes the subscriber's event intake and control frames
// through the wire nemesis (see transport.FaultPipe).
func WithSubFaults(p transport.FaultPipe) SubOption {
	return func(c *Conn) { c.fault = p }
}

// Subscribe opens the event intake for the given virtual groups and
// starts delivering events. ctl is the relay's control endpoint (unused
// in multicast mode, may be nil then). deliver runs on internal
// goroutines.
func Subscribe(mode Mode, ctl *net.UDPAddr, groups []uint16, deliver func(query.Event), opts ...SubOption) (*Conn, error) {
	c := &Conn{
		mode: mode, ctl: ctl, groups: append([]uint16(nil), groups...),
		renewEvery: DefaultLeaseTTL / 3,
		stop:       make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	switch mode {
	case ModeMulticast:
		for _, g := range groups {
			mc, err := net.ListenMulticastUDP("udp4", nil, GroupUDP(g))
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("relay: join group %d (%v): %w", g, GroupAddr(g), err)
			}
			c.mconns = append(c.mconns, mc)
			c.wg.Add(1)
			go c.recvLoop(mc, deliver)
		}
	case ModeUnicast:
		if ctl == nil {
			return nil, fmt.Errorf("relay: unicast subscription needs a control endpoint")
		}
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			return nil, fmt.Errorf("relay: listen: %w", err)
		}
		c.conn = conn
		if err := c.sendControl(query.WatchSubscribe); err != nil {
			c.Close()
			return nil, err
		}
		c.wg.Add(2)
		go c.recvLoop(conn, deliver)
		go c.renewLoop()
	default:
		return nil, fmt.Errorf("relay: unknown mode %d", mode)
	}
	return c, nil
}

// Received returns the count of event frames delivered so far.
func (c *Conn) Received() uint64 { return c.received.Load() }

// Acked returns the count of control acks seen (unicast lease health).
func (c *Conn) Acked() uint64 { return c.acks.Load() }

// Close tears the intake down; unicast leases are released eagerly.
func (c *Conn) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	if c.conn != nil {
		_ = c.sendControl(query.WatchUnsubscribe)
		c.conn.Close()
	}
	for _, mc := range c.mconns {
		mc.Close()
	}
	c.wg.Wait()
	return nil
}

func (c *Conn) recvLoop(conn *net.UDPConn, deliver func(query.Event)) {
	defer c.wg.Done()
	buf := make([]byte, 64<<10)
	var f packet.Frame
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if isClosed(err) {
				return
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		if c.fault != nil && !c.fault.Ingress(buf[:n]) {
			continue
		}
		_, _ = packet.DecodeBatch(&f, buf[:n], func(fr *packet.Frame) {
			switch fr.NC.Op {
			case kv.OpEvent:
				if ev, perr := query.ParseEvent(fr); perr == nil {
					c.received.Add(1)
					deliver(ev)
				}
			case kv.OpWatch:
				c.acks.Add(1)
			}
		})
	}
}

// renewLoop re-subscribes at a third of the lease TTL so transient loss
// of a control frame cannot silently expire the lease. The same cadence
// re-establishes the lease after a relay restart wipes its table.
func (c *Conn) renewLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.renewEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			_ = c.sendControl(query.WatchSubscribe)
		}
	}
}

func (c *Conn) sendControl(verb byte) error {
	f, err := query.NewWatch(0, 0, uint16(c.conn.LocalAddr().(*net.UDPAddr).Port), verb, uint64(time.Now().UnixNano()), c.groups)
	if err != nil {
		return err
	}
	defer packet.PutFrame(f)
	bp := packet.GetBuf()
	defer packet.PutBuf(bp)
	out, serr := f.Serialize((*bp)[:0])
	if serr != nil {
		return serr
	}
	*bp = out
	if c.fault != nil && !c.fault.Egress(out, c.ctl, c.rawSend) {
		return nil // consumed by the nemesis: dropped or delayed
	}
	_, werr := c.conn.WriteToUDP(out, c.ctl)
	return werr
}

func (c *Conn) rawSend(b []byte, ep *net.UDPAddr) { _, _ = c.conn.WriteToUDP(b, ep) }
