package relay

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/telemetry"
	"netchain/internal/transport"
)

// Mode selects the fan-out transport.
type Mode uint8

const (
	// ModeUnicast fans events out to individually leased subscriber
	// endpoints — the fallback for networks without multicast routing
	// (loopback CI, cloud overlays). Cost grows with subscriber count,
	// but stays one datagram per subscriber per *event*, not per poll.
	ModeUnicast Mode = iota
	// ModeMulticast sends one datagram per event to the group's multicast
	// address; the network replicates it to every joined subscriber, so
	// relay egress is independent of subscriber count.
	ModeMulticast
)

func (m Mode) String() string {
	if m == ModeMulticast {
		return "multicast"
	}
	return "unicast"
}

// DefaultLeaseTTL is how long a unicast subscription lives without
// renewal; subscriber connections renew at a third of it.
const DefaultLeaseTTL = 30 * time.Second

// Config tunes a relay Server.
type Config struct {
	// Bind is the listen address for both sockets ("127.0.0.1:0" in
	// tests; the port is the ingest socket's, the control socket binds
	// the next port up, falling back to an ephemeral one if taken).
	Bind string
	// Addr is the relay's virtual NetChain address, stamped as the IP
	// source of fanned-out event frames.
	Addr packet.Addr
	// Mode selects multicast or unicast-lease fan-out.
	Mode Mode
	// LeaseTTL bounds unicast subscriptions; 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// RecvBatch sizes the ingest ring (datagrams per syscall); 0 default.
	RecvBatch int
	// Epoch identifies this incarnation of the relay's sequencer in every
	// fanned-out event; subscribers treat an epoch change as a gap and
	// resync (a restarted relay's per-group sequences start over from 1).
	// 0 derives a nonzero epoch from the wall clock, so two incarnations
	// of the same relay virtually never share one.
	Epoch uint16
	// Faults, when set, routes the relay's ingest, fan-out and control
	// datagrams through the wire nemesis (see transport.FaultPipe).
	Faults transport.FaultPipe
}

// Stats counts the relay's traffic. Sequencer counters come from Core.
type Stats struct {
	CoreStats
	EgressDatagrams uint64 // fan-out datagrams queued (multicast: one per event)
	Subscribers     int    // live unicast leases (0 in multicast mode)
	DecodeErrors    uint64
}

type lease struct {
	ep      *net.UDPAddr // stable pointer: egress coalescing keys on it
	expires time.Time
}

// Server is the real-network relay: an ingest socket drains event frames
// from tail agents in recvmmsg batches and fans fresh ones out (reusing
// the transport's batch egress), while a control socket handles OpWatch
// subscribe/renew/unsubscribe from clients (plain reads — the relay must
// learn each subscriber's real source endpoint, which the batched ring
// does not capture).
type Server struct {
	cfg  Config
	conn *net.UDPConn // ingest + fan-out egress
	ctl  *net.UDPConn // subscription control

	core *Core

	mu   sync.Mutex
	subs map[uint16]map[uint64]*lease // group → endpoint key → lease

	egress    atomic.Uint64
	decodeErr atomic.Uint64

	wg sync.WaitGroup
}

// Start binds the relay's sockets and begins serving.
func Start(cfg Config) (*Server, error) {
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Epoch == 0 {
		// Nanosecond wall clock folded to 16 bits: effectively random per
		// process start, so even a crash-restart within the same second
		// lands on a fresh epoch — a subscriber must see the sequencer
		// reset as an epoch change (gap + resync), never mistake the new
		// stream's low sequence numbers for stale reordering. 0 is
		// reserved for "no epoch" (pre-epoch frames, the sim).
		cfg.Epoch = uint16(time.Now().UnixNano())
		if cfg.Epoch == 0 {
			cfg.Epoch = 1
		}
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("relay: resolve %q: %w", cfg.Bind, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("relay: listen ingest: %w", err)
	}
	// Deployments point subscribers (netchainctl watch -relay) at the
	// control socket, so its port must be predictable: ingest+1 when
	// free, ephemeral otherwise (tests bind ingest to port 0 and read
	// both endpoints back).
	ctlAddr := *conn.LocalAddr().(*net.UDPAddr)
	ctlAddr.Port++
	ctl, err := net.ListenUDP("udp", &ctlAddr)
	if err != nil {
		ctlAddr.Port = 0
		ctl, err = net.ListenUDP("udp", &ctlAddr)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("relay: listen control: %w", err)
	}
	s := &Server{
		cfg:  cfg,
		conn: conn,
		ctl:  ctl,
		core: NewCore(),
		subs: make(map[uint16]map[uint64]*lease),
	}
	s.wg.Add(2)
	go s.ingestLoop()
	go s.controlLoop()
	return s, nil
}

// IngestEndpoint is where tail agents send OpEvent frames (the node
// event-sink target).
func (s *Server) IngestEndpoint() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// ControlEndpoint is where subscribers send OpWatch control frames.
func (s *Server) ControlEndpoint() *net.UDPAddr { return s.ctl.LocalAddr().(*net.UDPAddr) }

// Addr returns the relay's virtual NetChain address.
func (s *Server) Addr() packet.Addr { return s.cfg.Addr }

// Mode returns the configured fan-out mode.
func (s *Server) Mode() Mode { return s.cfg.Mode }

// Stats snapshots the relay counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := 0
	for _, g := range s.subs {
		n += len(g)
	}
	s.mu.Unlock()
	return Stats{
		CoreStats:       s.core.Stats(),
		EgressDatagrams: s.egress.Load(),
		Subscribers:     n,
		DecodeErrors:    s.decodeErr.Load(),
	}
}

// RegisterMetrics publishes the relay's counters through reg — the same
// Stats() snapshot the CLI health path reads, so /metrics and
// `netchainctl cluster health` can never disagree about the relay.
func (s *Server) RegisterMetrics(reg *telemetry.Registry) {
	reg.Help(telemetry.RelayEventsIn, "event frames ingested from tail agents")
	reg.Help(telemetry.RelayEventsDup, "ingested events suppressed as duplicates")
	reg.Help(telemetry.RelayEventsOut, "fresh events accepted for fan-out")
	reg.Help(telemetry.RelayEgressDatagrams, "fan-out datagrams queued to subscribers")
	reg.Help(telemetry.RelaySubscribers, "live unicast leases (0 in multicast mode)")
	reg.Help(telemetry.RelayDecodeErrors, "undecodable ingest or control frames")
	reg.Collect(func(emit func(telemetry.Sample)) {
		st := s.Stats()
		emit(telemetry.Sample{Name: telemetry.RelayEventsIn, Kind: telemetry.KindCounter, Value: float64(st.EventsIn)})
		emit(telemetry.Sample{Name: telemetry.RelayEventsDup, Kind: telemetry.KindCounter, Value: float64(st.EventsDup)})
		emit(telemetry.Sample{Name: telemetry.RelayEventsOut, Kind: telemetry.KindCounter, Value: float64(st.EventsOut)})
		emit(telemetry.Sample{Name: telemetry.RelayEgressDatagrams, Kind: telemetry.KindCounter, Value: float64(st.EgressDatagrams)})
		emit(telemetry.Sample{Name: telemetry.RelaySubscribers, Kind: telemetry.KindGauge, Value: float64(st.Subscribers)})
		emit(telemetry.Sample{Name: telemetry.RelayDecodeErrors, Kind: telemetry.KindCounter, Value: float64(st.DecodeErrors)})
	})
}

// Close stops the relay.
func (s *Server) Close() error {
	err := s.conn.Close()
	if cerr := s.ctl.Close(); err == nil {
		err = cerr
	}
	s.wg.Wait()
	return err
}

// ingestLoop drains event batches and fans fresh events out. One
// goroutine owns the BatchConn for both directions, so a whole ingest
// burst flushes as one egress syscall.
func (s *Server) ingestLoop() {
	defer s.wg.Done()
	bio := transport.NewBatchConn(s.conn, s.cfg.RecvBatch)
	if s.cfg.Faults != nil {
		bio.SetFaults(s.cfg.Faults)
	}
	var f packet.Frame
	ef := packet.GetFrame()
	defer packet.PutFrame(ef)
	for {
		_, err := bio.ReadBatch(func(dgram []byte) {
			if _, derr := packet.DecodeBatch(&f, dgram, func(fr *packet.Frame) {
				s.handleEvent(fr, ef, bio)
			}); derr != nil {
				s.decodeErr.Add(1)
			}
		})
		if err != nil {
			if isClosed(err) {
				return
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		bio.Flush()
	}
}

// handleEvent sequences one ingested event and queues its fan-out.
func (s *Server) handleEvent(fr *packet.Frame, scratch *packet.Frame, bio *transport.BatchConn) {
	var ingressNs int64
	if fr.NC.Traced {
		ingressNs = time.Now().UnixNano()
	}
	ev, err := query.ParseEvent(fr)
	if err != nil {
		s.decodeErr.Add(1)
		return
	}
	seq, fresh := s.core.Ingest(ev)
	if !fresh {
		return
	}
	ev.StreamSeq = seq
	ev.Epoch = s.cfg.Epoch
	if s.cfg.Mode == ModeMulticast {
		query.EventInto(scratch, s.cfg.Addr, GroupAddr(ev.Group), packet.Port, McastPort, ev)
		s.stampRelayHop(scratch, fr, ingressNs)
		s.queueSerialized(scratch, GroupUDP(ev.Group), bio)
		return
	}
	now := time.Now()
	s.mu.Lock()
	group := s.subs[ev.Group]
	eps := make([]*net.UDPAddr, 0, len(group))
	for k, l := range group {
		if now.After(l.expires) {
			delete(group, k)
			continue
		}
		eps = append(eps, l.ep)
	}
	s.mu.Unlock()
	for _, ep := range eps {
		query.EventInto(scratch, s.cfg.Addr, GroupAddr(ev.Group), packet.Port, uint16(ep.Port), ev)
		s.stampRelayHop(scratch, fr, ingressNs)
		s.queueSerialized(scratch, ep, bio)
	}
}

// stampRelayHop propagates a traced event's telemetry onto the fanned-out
// frame and appends the relay's own hop record, so watch subscribers see
// the full head→tail→relay path of the mutation that reached them.
func (s *Server) stampRelayHop(out *packet.Frame, in *packet.Frame, ingressNs int64) {
	if !in.NC.Traced {
		return
	}
	out.CopyTraceFrom(in)
	out.AppendTraceHop(packet.TraceHop{
		SwitchID:  uint32(s.cfg.Addr),
		Stage:     packet.StageRelay,
		IngressNs: ingressNs,
		EgressNs:  time.Now().UnixNano(),
	})
	out.Finalize()
}

func (s *Server) queueSerialized(f *packet.Frame, ep *net.UDPAddr, bio *transport.BatchConn) {
	bp := packet.GetBuf()
	out, err := f.Serialize((*bp)[:0])
	if err != nil {
		packet.PutBuf(bp)
		return
	}
	*bp = out
	bio.Queue(bp, ep)
	s.egress.Add(1)
}

// controlLoop serves OpWatch subscribe/renew/unsubscribe. Plain
// one-datagram reads: control traffic is rare (one frame per subscriber
// per TTL/3), and ReadFromUDP surfaces the source endpoint the lease
// registry needs.
func (s *Server) controlLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	var f packet.Frame
	for {
		n, src, err := s.ctl.ReadFromUDP(buf)
		if err != nil {
			if isClosed(err) {
				return
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		if s.cfg.Faults != nil && !s.cfg.Faults.Ingress(buf[:n]) {
			continue
		}
		if derr := f.Decode(buf[:n]); derr != nil {
			s.decodeErr.Add(1)
			continue
		}
		verb, nonce, groups, perr := query.ParseWatch(&f)
		if perr != nil {
			s.decodeErr.Add(1)
			continue
		}
		switch verb {
		case query.WatchSubscribe:
			s.subscribe(src, groups)
		case query.WatchUnsubscribe:
			s.unsubscribe(src, groups)
		default:
			continue
		}
		s.ack(src, nonce, groups)
	}
}

// subscribe registers (or renews) src for the listed groups. The lease's
// endpoint records src's host with the *event* delivery port: the
// subscriber receives events on the same socket it controls from.
func (s *Server) subscribe(src *net.UDPAddr, groups []uint16) {
	exp := time.Now().Add(s.cfg.LeaseTTL)
	key := epKey(src)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range groups {
		m := s.subs[g]
		if m == nil {
			m = make(map[uint64]*lease)
			s.subs[g] = m
		}
		if l, ok := m[key]; ok {
			l.expires = exp
			continue
		}
		ep := &net.UDPAddr{IP: append(net.IP(nil), src.IP...), Port: src.Port}
		m[key] = &lease{ep: ep, expires: exp}
	}
}

func (s *Server) unsubscribe(src *net.UDPAddr, groups []uint16) {
	key := epKey(src)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range groups {
		if m := s.subs[g]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(s.subs, g)
			}
		}
	}
}

// ack confirms a control frame: OpWatch back to the subscriber with the
// WatchAck verb and the echoed nonce.
func (s *Server) ack(dst *net.UDPAddr, nonce uint64, groups []uint16) {
	f, err := query.NewWatch(s.cfg.Addr, 0, packet.Port, query.WatchAck, nonce, groups)
	if err != nil {
		return
	}
	defer packet.PutFrame(f)
	f.UDP.DstPort = uint16(dst.Port)
	f.Finalize()
	bp := packet.GetBuf()
	out, serr := f.Serialize((*bp)[:0])
	if serr == nil {
		if s.cfg.Faults == nil || s.cfg.Faults.Egress(out, dst, s.rawCtlSend) {
			_, _ = s.ctl.WriteToUDP(out, dst)
		}
	}
	*bp = out
	packet.PutBuf(bp)
}

func (s *Server) rawCtlSend(b []byte, ep *net.UDPAddr) { _, _ = s.ctl.WriteToUDP(b, ep) }

func isClosed(err error) bool { return errors.Is(err, net.ErrClosed) }
