// Package relay implements the push-watch fan-out tier: switches (via
// their co-located transport agents) publish one OpEvent frame per applied
// mutation, and the relay stamps each fresh event with a per-virtual-group
// stream sequence and fans it out to subscribers — over UDP multicast
// groups keyed by virtual group, or unicast to leased subscriber endpoints
// on networks without multicast. Notification cost is therefore
// independent of subscriber count: one mutation is one ingest frame and,
// under multicast, one egress datagram per group, however many clients
// watch it.
//
// The stream sequence is the subscriber's loss detector: a hole in a
// group's sequence means events were dropped in flight, and the
// subscriber's watch engine (internal/watch.Sub) falls back to versioned
// reads against the store to resynchronize. Duplicates — tail re-acks of
// replayed writes, retransmitted frames — are suppressed twice: by the
// relay's per-key version table, and again by the subscriber's version
// order.
//
// Core is the substrate-neutral sequencing/dedup engine shared by the real
// Server (UDP, batch I/O) and the simulator's relay host.
package relay

import (
	"sync"

	"netchain/internal/kv"
	"netchain/internal/query"
)

// Core assigns per-group stream sequences to fresh events and suppresses
// duplicate publications. Safe for concurrent use.
type Core struct {
	mu     sync.Mutex
	groups map[uint16]*groupSeq
	stats  CoreStats
}

type groupSeq struct {
	seq  uint64
	last map[kv.Key]kv.Version
}

// CoreStats counts the sequencer's traffic.
type CoreStats struct {
	EventsIn  uint64 // event frames ingested
	EventsDup uint64 // suppressed as duplicate (version not newer)
	EventsOut uint64 // fresh events sequenced for fan-out
}

// NewCore builds an empty sequencer.
func NewCore() *Core {
	return &Core{groups: make(map[uint16]*groupSeq)}
}

// Ingest processes one event from a tail agent. Fresh events (version
// strictly newer than the last published one for the key) are assigned
// the group's next stream sequence and must be fanned out; duplicates
// return ok=false and are dropped. The per-key version table is bounded
// by the store's key population — the same bound the switches' own
// register arrays live under.
func (c *Core) Ingest(ev query.Event) (seq uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.EventsIn++
	g := c.groups[ev.Group]
	if g == nil {
		g = &groupSeq{last: make(map[kv.Key]kv.Version)}
		c.groups[ev.Group] = g
	}
	if last, seen := g.last[ev.Key]; seen && !last.Less(ev.Version) {
		c.stats.EventsDup++
		return 0, false
	}
	g.last[ev.Key] = ev.Version
	g.seq++
	c.stats.EventsOut++
	return g.seq, true
}

// Stats snapshots the counters.
func (c *Core) Stats() CoreStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
