// Package swsim models the programmable switch ASIC substrate NetChain
// runs on (§4.1, §6, §7): exact-match tables that map keys to indexes, and
// per-stage register arrays that hold values, with the resource limits of a
// real pipeline — k stages that can each read or write n bytes per pass,
// a bounded number of slots per stage, and packet recirculation when a
// value exceeds k·n bytes (which costs extra pipeline passes and therefore
// divides effective throughput, §6).
//
// The paper's prototype: 16-byte keys, 8 value stages × 64K slots × 16
// bytes = 8 MB of value storage per switch, values up to 128 B at line
// rate, and a Tofino budget of ~4 billion packets per second.
package swsim

import (
	"fmt"

	"netchain/internal/kv"
)

// Config fixes the pipeline resources of one switch.
type Config struct {
	Stages        int     // value stages traversable per pass (paper: 8)
	SlotBytes     int     // bytes a stage reads/writes per packet (paper: 16)
	SlotsPerStage int     // register-array entries per stage (paper: 64K)
	PPS           float64 // line-rate packet budget per second (paper: 4e9)
}

// Tofino returns the paper's prototype configuration (§7).
func Tofino() Config {
	return Config{Stages: 8, SlotBytes: 16, SlotsPerStage: 64 * 1024, PPS: 4e9}
}

// MaxValueBytes is the largest value storable in this pipeline, including
// recirculation passes: every pass exposes Stages×SlotBytes fresh bytes and
// the parser bounds total value size at 8 passes' worth.
func (c Config) MaxValueBytes() int { return 8 * c.Stages * c.SlotBytes }

// LineRateValueBytes is the largest value processable in a single pass —
// the paper's "k·n = 192 bytes at line rate" bound (§6).
func (c Config) LineRateValueBytes() int { return c.Stages * c.SlotBytes }

// StorageBytes is the total on-chip value storage (paper: 8 MB).
func (c Config) StorageBytes() int { return c.Stages * c.SlotBytes * c.SlotsPerStage }

// PassesFor returns how many pipeline passes a value of n bytes needs:
// one, plus one recirculation per additional k·n chunk (§6). Effective
// switch throughput divides by this number.
func (c Config) PassesFor(valueLen int) int {
	if valueLen <= 0 {
		return 1
	}
	per := c.LineRateValueBytes()
	return (valueLen + per - 1) / per
}

func (c Config) validate() error {
	if c.Stages < 1 || c.SlotBytes < 1 || c.SlotsPerStage < 1 {
		return fmt.Errorf("swsim: non-positive pipeline dimension %+v", c)
	}
	return nil
}

// RegisterArray is one stage's register file: SlotsPerStage entries of
// SlotBytes each, stored flat. Reads return views; writes copy in.
type RegisterArray struct {
	slotBytes int
	data      []byte
}

// NewRegisterArray allocates a zeroed array.
func NewRegisterArray(slots, slotBytes int) *RegisterArray {
	return &RegisterArray{slotBytes: slotBytes, data: make([]byte, slots*slotBytes)}
}

// Slots returns the entry count.
func (r *RegisterArray) Slots() int { return len(r.data) / r.slotBytes }

// Read returns a read-only view of slot i.
func (r *RegisterArray) Read(i int) []byte {
	return r.data[i*r.slotBytes : (i+1)*r.slotBytes]
}

// Write copies at most SlotBytes from v into slot i and zero-fills the
// remainder, mirroring a register write of the full word.
func (r *RegisterArray) Write(i int, v []byte) {
	dst := r.data[i*r.slotBytes : (i+1)*r.slotBytes]
	n := copy(dst, v)
	for j := n; j < len(dst); j++ {
		dst[j] = 0
	}
}

// MatchTable is an exact-match table from key to register index — the
// "Match-Action Table" of Fig. 3. Entries are installed by the control
// plane (Insert) and removed by garbage collection (Delete).
type MatchTable struct {
	capacity int
	index    map[kv.Key]int
}

// NewMatchTable builds a table bounded at capacity entries.
func NewMatchTable(capacity int) *MatchTable {
	return &MatchTable{capacity: capacity, index: make(map[kv.Key]int)}
}

// Lookup is the dataplane match: key → register index.
func (t *MatchTable) Lookup(k kv.Key) (int, bool) {
	loc, ok := t.index[k]
	return loc, ok
}

// Install adds an entry (control-plane operation).
func (t *MatchTable) Install(k kv.Key, loc int) error {
	if _, dup := t.index[k]; dup {
		return fmt.Errorf("swsim: key %v already installed", k)
	}
	if len(t.index) >= t.capacity {
		return kv.ErrNoSpace
	}
	t.index[k] = loc
	return nil
}

// Remove deletes an entry (control-plane garbage collection).
func (t *MatchTable) Remove(k kv.Key) (int, bool) {
	loc, ok := t.index[k]
	if ok {
		delete(t.index, k)
	}
	return loc, ok
}

// Len returns the number of installed entries.
func (t *MatchTable) Len() int { return len(t.index) }

// Keys enumerates installed keys (control-plane use: state sync).
func (t *MatchTable) Keys() []kv.Key {
	out := make([]kv.Key, 0, len(t.index))
	for k := range t.index {
		out = append(out, k)
	}
	return out
}

// slotMeta is the per-slot bookkeeping a real pipeline keeps in additional
// register arrays: the value length, liveness (tombstone flag) and the
// ordering version (sequence + session arrays of §4.3/§5.2).
type slotMeta struct {
	valueLen int
	live     bool
	version  kv.Version
	// overflow holds the bytes beyond one pipeline pass's budget. A real
	// switch dedicates further register slots reached by recirculation
	// (§6); the memory accounting charges for them identically.
	overflow []byte
}

// Pipeline is the full on-chip key-value engine of one switch: a match
// table plus Stages register arrays for values and the metadata arrays.
type Pipeline struct {
	cfg     Config
	table   *MatchTable
	stages  []*RegisterArray
	meta    []slotMeta
	free    []int // free slot indexes, LIFO
	packets uint64
	passes  uint64
}

// NewPipeline allocates the pipeline for cfg.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:   cfg,
		table: NewMatchTable(cfg.SlotsPerStage),
		meta:  make([]slotMeta, cfg.SlotsPerStage),
	}
	for i := 0; i < cfg.Stages; i++ {
		p.stages = append(p.stages, NewRegisterArray(cfg.SlotsPerStage, cfg.SlotBytes))
	}
	p.free = make([]int, cfg.SlotsPerStage)
	for i := range p.free {
		p.free[i] = cfg.SlotsPerStage - 1 - i
	}
	return p, nil
}

// Config returns the pipeline's resource configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Alloc installs key k and reserves a register slot for it. Control-plane
// path (§4.1: "Insert queries require the control plane to set up entries
// in switch tables").
func (p *Pipeline) Alloc(k kv.Key) (int, error) {
	if len(p.free) == 0 {
		return 0, kv.ErrNoSpace
	}
	loc := p.free[len(p.free)-1]
	if err := p.table.Install(k, loc); err != nil {
		return 0, err
	}
	p.free = p.free[:len(p.free)-1]
	p.meta[loc] = slotMeta{}
	return loc, nil
}

// Free removes key k's match entry and returns its slot to the free list
// (control-plane garbage collection after Delete, §4.1).
func (p *Pipeline) Free(k kv.Key) error {
	loc, ok := p.table.Remove(k)
	if !ok {
		return kv.ErrNotFound
	}
	p.meta[loc] = slotMeta{}
	for _, st := range p.stages {
		st.Write(loc, nil)
	}
	p.free = append(p.free, loc)
	return nil
}

// Lookup is the dataplane match stage.
func (p *Pipeline) Lookup(k kv.Key) (int, bool) { return p.table.Lookup(k) }

// ReadValue copies the value at loc out of the stage registers; ok is
// false for a tombstoned slot.
func (p *Pipeline) ReadValue(loc int) (kv.Value, bool) {
	m := p.meta[loc]
	if !m.live {
		return nil, false
	}
	out := make([]byte, m.valueLen)
	p.copyValue(out, loc)
	return out, true
}

// ReadValueInto copies the value at loc into dst (which must be large
// enough) and returns the number of bytes, avoiding allocation on the
// simulator's hot path.
func (p *Pipeline) ReadValueInto(dst []byte, loc int) (int, bool) {
	m := p.meta[loc]
	if !m.live {
		return 0, false
	}
	p.copyValue(dst[:m.valueLen], loc)
	return m.valueLen, true
}

func (p *Pipeline) copyValue(out []byte, loc int) {
	for i := 0; i < len(p.stages) && len(out) > 0; i++ {
		n := copy(out, p.stages[i].Read(loc))
		out = out[n:]
	}
	copy(out, p.meta[loc].overflow)
}

// WriteValue spreads v across the stage registers at loc: the first
// Stages×SlotBytes land in the per-stage arrays; any remainder goes to the
// overflow bank that models the extra register slots recirculation passes
// reach (§6).
func (p *Pipeline) WriteValue(loc int, v kv.Value) error {
	if len(v) > p.cfg.MaxValueBytes() {
		return kv.ErrTooLarge
	}
	rest := []byte(v)
	for _, st := range p.stages {
		n := len(rest)
		if n > p.cfg.SlotBytes {
			n = p.cfg.SlotBytes
		}
		st.Write(loc, rest[:n])
		rest = rest[n:]
	}
	if len(rest) > 0 {
		p.meta[loc].overflow = append(p.meta[loc].overflow[:0], rest...)
	} else {
		p.meta[loc].overflow = nil
	}
	p.meta[loc].valueLen = len(v)
	p.meta[loc].live = true
	return nil
}

// Tombstone invalidates the slot in the dataplane (Delete, §4.1).
func (p *Pipeline) Tombstone(loc int) {
	p.meta[loc].live = false
	p.meta[loc].valueLen = 0
	p.meta[loc].overflow = nil
}

// Version returns the ordering version stored for loc.
func (p *Pipeline) Version(loc int) kv.Version { return p.meta[loc].version }

// SetVersion stores the ordering version for loc.
func (p *Pipeline) SetVersion(loc int, v kv.Version) { p.meta[loc].version = v }

// CountPacket records that one packet consulted the pipeline, carrying a
// value of valueLen bytes (for recirculation accounting). Returns the
// number of passes the packet consumed.
func (p *Pipeline) CountPacket(valueLen int) int {
	n := p.cfg.PassesFor(valueLen)
	p.packets++
	p.passes += uint64(n)
	return n
}

// Stats reports packets processed and pipeline passes consumed; the ratio
// is the recirculation overhead factor.
func (p *Pipeline) Stats() (packets, passes uint64) { return p.packets, p.passes }

// ItemCount returns the number of installed keys.
func (p *Pipeline) ItemCount() int { return p.table.Len() }

// FreeSlots returns the number of unallocated slots.
func (p *Pipeline) FreeSlots() int { return len(p.free) }

// Keys enumerates installed keys for control-plane state sync.
func (p *Pipeline) Keys() []kv.Key { return p.table.Keys() }

// MemoryBytes reports the value storage consumed by live items, as a real
// controller would account against the on-chip SRAM budget (§6).
func (p *Pipeline) MemoryBytes() int {
	total := 0
	for _, m := range p.meta {
		if m.live {
			// A slot pins SlotBytes in every stage it touches.
			n := (m.valueLen + p.cfg.SlotBytes - 1) / p.cfg.SlotBytes
			if n == 0 {
				n = 1
			}
			total += n * p.cfg.SlotBytes
		}
	}
	return total
}
