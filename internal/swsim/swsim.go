// Package swsim models the programmable switch ASIC substrate NetChain
// runs on (§4.1, §6, §7): exact-match tables that map keys to indexes, and
// per-stage register arrays that hold values, with the resource limits of a
// real pipeline — k stages that can each read or write n bytes per pass,
// a bounded number of slots per stage, and packet recirculation when a
// value exceeds k·n bytes (which costs extra pipeline passes and therefore
// divides effective throughput, §6).
//
// The paper's prototype: 16-byte keys, 8 value stages × 64K slots × 16
// bytes = 8 MB of value storage per switch, values up to 128 B at line
// rate, and a Tofino budget of ~4 billion packets per second.
//
// Concurrency model: a hardware pipeline serves reads at line rate with no
// coordination at all — every packet flows through the register stages
// unobstructed. To mirror that in software, each slot is guarded by a
// seqlock: a per-slot version counter (even = stable, odd = write in
// flight) over flat word arrays accessed atomically. Readers copy the
// value with plain atomic loads and retry on a torn snapshot; writers
// serialize per slot on striped write locks and bump the counter around
// the store. Reads never block, never allocate, and scale across cores;
// the match table is a sync.Map whose read path is a lock-free lookup on
// an immutable map.
package swsim

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"netchain/internal/kv"
)

// Config fixes the pipeline resources of one switch.
type Config struct {
	Stages        int     // value stages traversable per pass (paper: 8)
	SlotBytes     int     // bytes a stage reads/writes per packet (paper: 16)
	SlotsPerStage int     // register-array entries per stage (paper: 64K)
	PPS           float64 // line-rate packet budget per second (paper: 4e9)
}

// Tofino returns the paper's prototype configuration (§7).
func Tofino() Config {
	return Config{Stages: 8, SlotBytes: 16, SlotsPerStage: 64 * 1024, PPS: 4e9}
}

// MaxValueBytes is the largest value storable in this pipeline, including
// recirculation passes: every pass exposes Stages×SlotBytes fresh bytes and
// the parser bounds total value size at 8 passes' worth.
func (c Config) MaxValueBytes() int { return 8 * c.Stages * c.SlotBytes }

// LineRateValueBytes is the largest value processable in a single pass —
// the paper's "k·n = 192 bytes at line rate" bound (§6).
func (c Config) LineRateValueBytes() int { return c.Stages * c.SlotBytes }

// StorageBytes is the total on-chip value storage (paper: 8 MB).
func (c Config) StorageBytes() int { return c.Stages * c.SlotBytes * c.SlotsPerStage }

// PassesFor returns how many pipeline passes a value of n bytes needs:
// one, plus one recirculation per additional k·n chunk (§6). Effective
// switch throughput divides by this number.
func (c Config) PassesFor(valueLen int) int {
	if valueLen <= 0 {
		return 1
	}
	per := c.LineRateValueBytes()
	return (valueLen + per - 1) / per
}

func (c Config) validate() error {
	if c.Stages < 1 || c.SlotBytes < 1 || c.SlotsPerStage < 1 {
		return fmt.Errorf("swsim: non-positive pipeline dimension %+v", c)
	}
	return nil
}

// RegisterArray is one stage's register file: SlotsPerStage entries of
// SlotBytes each, stored flat. Reads return views; writes copy in. It
// models a single stage in isolation (not safe for concurrent use); the
// Pipeline below flattens all stages of a slot into one word array so the
// seqlock read path touches contiguous memory.
type RegisterArray struct {
	slotBytes int
	data      []byte
}

// NewRegisterArray allocates a zeroed array.
func NewRegisterArray(slots, slotBytes int) *RegisterArray {
	return &RegisterArray{slotBytes: slotBytes, data: make([]byte, slots*slotBytes)}
}

// Slots returns the entry count.
func (r *RegisterArray) Slots() int { return len(r.data) / r.slotBytes }

// Read returns a read-only view of slot i.
func (r *RegisterArray) Read(i int) []byte {
	return r.data[i*r.slotBytes : (i+1)*r.slotBytes]
}

// Write copies at most SlotBytes from v into slot i and zero-fills the
// remainder, mirroring a register write of the full word.
func (r *RegisterArray) Write(i int, v []byte) {
	dst := r.data[i*r.slotBytes : (i+1)*r.slotBytes]
	n := copy(dst, v)
	for j := n; j < len(dst); j++ {
		dst[j] = 0
	}
}

// MatchTable is an exact-match table from key to register index — the
// "Match-Action Table" of Fig. 3. Entries are installed by the control
// plane (Insert) and removed by garbage collection (Delete). Lookup is
// safe for concurrent use with Install/Remove and is lock-free in steady
// state: installed keys promote into sync.Map's immutable read map, so the
// dataplane match costs one atomic pointer load plus a map probe.
type MatchTable struct {
	capacity int
	mu       sync.Mutex // serializes Install/Remove (capacity accounting)
	n        atomic.Int64
	index    sync.Map // kv.Key -> int
}

// NewMatchTable builds a table bounded at capacity entries.
func NewMatchTable(capacity int) *MatchTable {
	return &MatchTable{capacity: capacity}
}

// Lookup is the dataplane match: key → register index.
func (t *MatchTable) Lookup(k kv.Key) (int, bool) {
	v, ok := t.index.Load(k)
	if !ok {
		return 0, false
	}
	return v.(int), true
}

// Install adds an entry (control-plane operation).
func (t *MatchTable) Install(k kv.Key, loc int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.index.Load(k); dup {
		return fmt.Errorf("swsim: key %v already installed", k)
	}
	if int(t.n.Load()) >= t.capacity {
		return kv.ErrNoSpace
	}
	t.index.Store(k, loc)
	t.n.Add(1)
	return nil
}

// Remove deletes an entry (control-plane garbage collection).
func (t *MatchTable) Remove(k kv.Key) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.index.Load(k)
	if !ok {
		return 0, false
	}
	t.index.Delete(k)
	t.n.Add(-1)
	return v.(int), true
}

// Len returns the number of installed entries.
func (t *MatchTable) Len() int { return int(t.n.Load()) }

// Keys enumerates installed keys (control-plane use: state sync).
func (t *MatchTable) Keys() []kv.Key {
	out := make([]kv.Key, 0, t.Len())
	t.index.Range(func(k, _ any) bool {
		out = append(out, k.(kv.Key))
		return true
	})
	return out
}

// Per-slot metadata is packed into two atomic words so a snapshot is a
// pair of loads inside the seqlock window:
//
//	word 0: live(1 bit) | valueLen(31 bits) | version.Session(32 bits)
//	word 1: version.Seq(64 bits)
const (
	metaLive     = uint64(1) << 63
	metaLenShift = 32
	metaLenMask  = uint64(1)<<31 - 1
)

// writeStripes is the number of independent write locks slots stripe onto;
// a power of two so loc&(writeStripes-1) picks a stripe. Writers to
// different slots almost never contend; readers never touch these locks.
const writeStripes = 128

// overflowSlab holds the words beyond one pipeline pass's budget for a
// slot. A real switch dedicates further register slots reached by
// recirculation (§6); the memory accounting charges for them identically.
// Slabs are allocated at full recirculation size on first use and replaced
// wholesale on Free, so readers chasing a stale pointer still land on
// validly-sized storage and the seqlock recheck discards the bytes.
type overflowSlab struct {
	words []atomic.Uint64
}

// Pipeline is the full on-chip key-value engine of one switch: a match
// table plus the flattened register stages for values and the metadata
// arrays. Reads (ReadLatest, ReadValue, ReadValueInto, Version) are
// lock-free and safe to call from any number of goroutines; writes
// serialize per slot on striped locks. Callers that need a
// read-modify-write (version check then commit) must provide their own
// serialization across the writers of that slot — the core dataplane uses
// per-virtual-group locks for exactly this.
type Pipeline struct {
	cfg           Config
	lineRateBytes int
	slotWords     int // words per slot covering the line-rate region

	table    *MatchTable
	words    []atomic.Uint64 // SlotsPerStage × slotWords value words
	seq      []atomic.Uint32 // per-slot seqlock counters
	meta     []atomic.Uint64 // 2 words per slot, packed as above
	keyw     []atomic.Uint64 // 2 words per slot: the owning key, for lock-free tenant checks
	overflow []atomic.Pointer[overflowSlab]
	stripes  [writeStripes]sync.Mutex

	ctl  sync.Mutex // guards the free list (Alloc/Free)
	free []int      // free slot indexes, LIFO

	packets atomic.Uint64
	passes  atomic.Uint64
}

// NewPipeline allocates the pipeline for cfg.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lr := cfg.LineRateValueBytes()
	p := &Pipeline{
		cfg:           cfg,
		lineRateBytes: lr,
		slotWords:     (lr + 7) / 8,
		table:         NewMatchTable(cfg.SlotsPerStage),
		seq:           make([]atomic.Uint32, cfg.SlotsPerStage),
		meta:          make([]atomic.Uint64, 2*cfg.SlotsPerStage),
		keyw:          make([]atomic.Uint64, 2*cfg.SlotsPerStage),
		overflow:      make([]atomic.Pointer[overflowSlab], cfg.SlotsPerStage),
	}
	p.words = make([]atomic.Uint64, cfg.SlotsPerStage*p.slotWords)
	p.free = make([]int, cfg.SlotsPerStage)
	for i := range p.free {
		p.free[i] = cfg.SlotsPerStage - 1 - i
	}
	return p, nil
}

// Config returns the pipeline's resource configuration.
func (p *Pipeline) Config() Config { return p.cfg }

func (p *Pipeline) stripe(loc int) *sync.Mutex {
	return &p.stripes[loc&(writeStripes-1)]
}

// Alloc installs key k and reserves a register slot for it. Control-plane
// path (§4.1: "Insert queries require the control plane to set up entries
// in switch tables").
func (p *Pipeline) Alloc(k kv.Key) (int, error) {
	p.ctl.Lock()
	defer p.ctl.Unlock()
	if len(p.free) == 0 {
		return 0, kv.ErrNoSpace
	}
	loc := p.free[len(p.free)-1]
	// Reset BEFORE the match-table install publishes the slot: the moment
	// Lookup can see k, a concurrent dataplane write may commit into loc,
	// and a reset after that would silently wipe an acknowledged write.
	// If Install fails the slot stays on the free list; the next Alloc
	// resets it again.
	p.resetSlot(loc, k)
	if err := p.table.Install(k, loc); err != nil {
		return 0, err
	}
	p.free = p.free[:len(p.free)-1]
	return loc, nil
}

// Free removes key k's match entry and returns its slot to the free list
// (control-plane garbage collection after Delete, §4.1).
func (p *Pipeline) Free(k kv.Key) error {
	p.ctl.Lock()
	defer p.ctl.Unlock()
	loc, ok := p.table.Remove(k)
	if !ok {
		return kv.ErrNotFound
	}
	p.resetSlot(loc, kv.Key{})
	p.free = append(p.free, loc)
	return nil
}

// resetSlot zeroes a slot's metadata and records its (new) owning key
// under the seqlock, so an in-flight reader of the old tenant can never
// observe a torn mix — and, via the key words, can detect that the slot
// changed hands entirely (ReadLatestFor).
func (p *Pipeline) resetSlot(loc int, k kv.Key) {
	w0 := binary.LittleEndian.Uint64(k[:8])
	w1 := binary.LittleEndian.Uint64(k[8:])
	mu := p.stripe(loc)
	mu.Lock()
	p.seq[loc].Add(1)
	p.meta[2*loc].Store(0)
	p.meta[2*loc+1].Store(0)
	p.keyw[2*loc].Store(w0)
	p.keyw[2*loc+1].Store(w1)
	p.overflow[loc].Store(nil)
	p.seq[loc].Add(1)
	mu.Unlock()
}

// Lookup is the dataplane match stage (lock-free).
func (p *Pipeline) Lookup(k kv.Key) (int, bool) { return p.table.Lookup(k) }

// emptyValue is the non-nil zero-length value returned for live slots with
// an empty value, so the read path allocates nothing for them.
var emptyValue = make([]byte, 0)

// ReadLatestFor is ReadLatest with a tenant check: inside the same
// seqlock window it verifies the slot still belongs to key k, so a
// lock-free reader racing control-plane garbage collection (Free followed
// by an Alloc that reuses the slot for another key) observes a clean miss
// instead of the new tenant's value. This is the read the dataplane must
// use: the match lookup and the value snapshot are not atomic, and the
// key words are what re-links them.
func (p *Pipeline) ReadLatestFor(k kv.Key, loc int, scratch *[]byte) (val []byte, ver kv.Version, live bool) {
	return p.readLatest(loc, scratch, binary.LittleEndian.Uint64(k[:8]), binary.LittleEndian.Uint64(k[8:]), true)
}

// ReadLatest copies a consistent (value, version, liveness) snapshot of
// slot loc without taking any lock: it reads the seqlock counter, copies
// the words with atomic loads, and retries if a concurrent writer moved
// the counter. The value is returned in *scratch, which is grown once to
// the slot's value size and reused on subsequent calls — the dataplane
// hot path performs zero allocations in steady state. Callers that hold
// no lock excluding slot reuse should prefer ReadLatestFor.
func (p *Pipeline) ReadLatest(loc int, scratch *[]byte) (val []byte, ver kv.Version, live bool) {
	return p.readLatest(loc, scratch, 0, 0, false)
}

func (p *Pipeline) readLatest(loc int, scratch *[]byte, k0, k1 uint64, checkKey bool) (val []byte, ver kv.Version, live bool) {
	for spins := 0; ; spins++ {
		s1 := p.seq[loc].Load()
		if s1&1 != 0 {
			// Write in flight; yield occasionally so a single-core
			// scheduler lets the writer finish.
			if spins&63 == 63 {
				runtime.Gosched()
			}
			continue
		}
		if checkKey && (p.keyw[2*loc].Load() != k0 || p.keyw[2*loc+1].Load() != k1) {
			// The slot changed tenants after the match lookup: only a
			// stable observation counts, so recheck the seqlock before
			// reporting the miss.
			if p.seq[loc].Load() == s1 {
				return nil, kv.Version{}, false
			}
			continue
		}
		w0 := p.meta[2*loc].Load()
		wseq := p.meta[2*loc+1].Load()
		live = w0&metaLive != 0
		vlen := int((w0 >> metaLenShift) & metaLenMask)
		ver = kv.Version{Session: uint32(w0), Seq: wseq}
		var out []byte
		if live {
			if vlen == 0 {
				out = emptyValue
			} else {
				if cap(*scratch) < vlen {
					*scratch = make([]byte, vlen)
				}
				out = (*scratch)[:vlen]
				if !p.copyOut(out, loc) {
					continue // overflow slab raced with a writer; retry
				}
			}
		}
		if p.seq[loc].Load() == s1 {
			return out, ver, live
		}
	}
}

// ReadValue copies the value at loc out of the stage registers; ok is
// false for a tombstoned slot. It allocates a fresh value — control-plane
// and adjudication paths that retain the bytes use this; the dataplane
// read path uses ReadLatest with a reused buffer.
func (p *Pipeline) ReadValue(loc int) (kv.Value, bool) {
	var buf []byte
	val, _, live := p.ReadLatest(loc, &buf)
	if !live {
		return nil, false
	}
	return val, true
}

// ReadValueInto copies the value at loc into dst and returns the number
// of bytes, avoiding allocation on the hot path. ok is false for a
// tombstoned slot — or when the committed value no longer fits dst (a
// concurrent writer may grow a value after the caller sized its buffer;
// callers that must never miss should size dst at Config().MaxValueBytes).
func (p *Pipeline) ReadValueInto(dst []byte, loc int) (int, bool) {
	for spins := 0; ; spins++ {
		s1 := p.seq[loc].Load()
		if s1&1 != 0 {
			if spins&63 == 63 {
				runtime.Gosched()
			}
			continue
		}
		w0 := p.meta[2*loc].Load()
		live := w0&metaLive != 0
		vlen := int((w0 >> metaLenShift) & metaLenMask)
		if !live || vlen > len(dst) {
			if p.seq[loc].Load() == s1 {
				return 0, false
			}
			continue
		}
		if vlen > 0 && !p.copyOut(dst[:vlen], loc) {
			continue
		}
		if p.seq[loc].Load() == s1 {
			return vlen, true
		}
	}
}

// copyOut copies len(dst) value bytes of slot loc from the word arrays
// using atomic loads. It reports false when the overflow slab is missing
// or too short — a sign the snapshot raced with a writer and must retry.
func (p *Pipeline) copyOut(dst []byte, loc int) bool {
	n := len(dst)
	lr := p.lineRateBytes
	head := n
	if head > lr {
		head = lr
	}
	copyWordsOut(dst[:head], p.words[loc*p.slotWords:])
	if n > lr {
		slab := p.overflow[loc].Load()
		need := (n - lr + 7) / 8
		if slab == nil || len(slab.words) < need {
			return false
		}
		copyWordsOut(dst[lr:], slab.words)
	}
	return true
}

// copyWordsOut unpacks words into dst with atomic loads, little-endian.
func copyWordsOut(dst []byte, src []atomic.Uint64) {
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], src[i/8].Load())
	}
	if i < len(dst) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], src[i/8].Load())
		copy(dst[i:], tmp[:])
	}
}

// copyWordsIn packs src bytes into dst words with atomic stores.
func copyWordsIn(dst []atomic.Uint64, src []byte) {
	i := 0
	for ; i+8 <= len(src); i += 8 {
		dst[i/8].Store(binary.LittleEndian.Uint64(src[i:]))
	}
	if i < len(src) {
		var tmp [8]byte
		copy(tmp[:], src[i:])
		dst[i/8].Store(binary.LittleEndian.Uint64(tmp[:]))
	}
}

// storeValue writes v's bytes into slot loc's word arrays. Caller holds
// the stripe lock and has the seqlock counter odd.
func (p *Pipeline) storeValue(loc int, v []byte) {
	head := len(v)
	if head > p.lineRateBytes {
		head = p.lineRateBytes
	}
	copyWordsIn(p.words[loc*p.slotWords:], v[:head])
	if len(v) > p.lineRateBytes {
		slab := p.overflow[loc].Load()
		if slab == nil {
			maxWords := (p.cfg.MaxValueBytes() - p.lineRateBytes + 7) / 8
			slab = &overflowSlab{words: make([]atomic.Uint64, maxWords)}
			p.overflow[loc].Store(slab)
		}
		copyWordsIn(slab.words, v[p.lineRateBytes:])
	}
}

// Commit atomically installs value, version and liveness for slot loc in
// one seqlock critical section — the primitive behind dataplane apply and
// state sync. tombstone invalidates the value while still advancing the
// version (Delete is an ordered write, §4.1).
func (p *Pipeline) Commit(loc int, v kv.Value, ver kv.Version, tombstone bool) error {
	if len(v) > p.cfg.MaxValueBytes() {
		return kv.ErrTooLarge
	}
	mu := p.stripe(loc)
	mu.Lock()
	p.seq[loc].Add(1)
	w0 := uint64(ver.Session)
	if !tombstone {
		p.storeValue(loc, v)
		w0 |= metaLive | uint64(len(v))<<metaLenShift
	}
	p.meta[2*loc].Store(w0)
	p.meta[2*loc+1].Store(ver.Seq)
	p.seq[loc].Add(1)
	mu.Unlock()
	return nil
}

// WriteValue spreads v across the stage registers at loc, keeping the
// stored version. Values beyond one pipeline pass's budget land in the
// overflow bank that models the extra register slots recirculation passes
// reach (§6).
func (p *Pipeline) WriteValue(loc int, v kv.Value) error {
	if len(v) > p.cfg.MaxValueBytes() {
		return kv.ErrTooLarge
	}
	mu := p.stripe(loc)
	mu.Lock()
	w1 := p.meta[2*loc+1].Load()
	session := uint32(p.meta[2*loc].Load())
	p.seq[loc].Add(1)
	p.storeValue(loc, v)
	p.meta[2*loc].Store(uint64(session) | metaLive | uint64(len(v))<<metaLenShift)
	p.meta[2*loc+1].Store(w1)
	p.seq[loc].Add(1)
	mu.Unlock()
	return nil
}

// Tombstone invalidates the slot in the dataplane (Delete, §4.1), keeping
// the stored version.
func (p *Pipeline) Tombstone(loc int) {
	mu := p.stripe(loc)
	mu.Lock()
	session := uint32(p.meta[2*loc].Load())
	p.seq[loc].Add(1)
	p.meta[2*loc].Store(uint64(session))
	p.seq[loc].Add(1)
	mu.Unlock()
}

// Version returns the ordering version stored for loc (a consistent
// snapshot; lock-free).
func (p *Pipeline) Version(loc int) kv.Version {
	for spins := 0; ; spins++ {
		s1 := p.seq[loc].Load()
		if s1&1 != 0 {
			if spins&63 == 63 {
				runtime.Gosched()
			}
			continue
		}
		w0 := p.meta[2*loc].Load()
		w1 := p.meta[2*loc+1].Load()
		if p.seq[loc].Load() == s1 {
			return kv.Version{Session: uint32(w0), Seq: w1}
		}
	}
}

// SetVersion stores the ordering version for loc, keeping value bytes and
// liveness.
func (p *Pipeline) SetVersion(loc int, v kv.Version) {
	mu := p.stripe(loc)
	mu.Lock()
	w0 := p.meta[2*loc].Load()
	p.seq[loc].Add(1)
	p.meta[2*loc].Store(w0>>32<<32 | uint64(v.Session))
	p.meta[2*loc+1].Store(v.Seq)
	p.seq[loc].Add(1)
	mu.Unlock()
}

// CountPacket records that one packet consulted the pipeline, carrying a
// value of valueLen bytes (for recirculation accounting). Returns the
// number of passes the packet consumed.
func (p *Pipeline) CountPacket(valueLen int) int {
	n := p.cfg.PassesFor(valueLen)
	p.packets.Add(1)
	p.passes.Add(uint64(n))
	return n
}

// Stats reports packets processed and pipeline passes consumed; the ratio
// is the recirculation overhead factor.
func (p *Pipeline) Stats() (packets, passes uint64) {
	return p.packets.Load(), p.passes.Load()
}

// ItemCount returns the number of installed keys.
func (p *Pipeline) ItemCount() int { return p.table.Len() }

// FreeSlots returns the number of unallocated slots.
func (p *Pipeline) FreeSlots() int {
	p.ctl.Lock()
	defer p.ctl.Unlock()
	return len(p.free)
}

// Keys enumerates installed keys for control-plane state sync.
func (p *Pipeline) Keys() []kv.Key { return p.table.Keys() }

// MemoryBytes reports the value storage consumed by live items, as a real
// controller would account against the on-chip SRAM budget (§6).
func (p *Pipeline) MemoryBytes() int {
	total := 0
	for loc := 0; loc < p.cfg.SlotsPerStage; loc++ {
		w0 := p.meta[2*loc].Load()
		if w0&metaLive != 0 {
			// A slot pins SlotBytes in every stage it touches.
			vlen := int((w0 >> metaLenShift) & metaLenMask)
			n := (vlen + p.cfg.SlotBytes - 1) / p.cfg.SlotBytes
			if n == 0 {
				n = 1
			}
			total += n * p.cfg.SlotBytes
		}
	}
	return total
}
