package swsim

import (
	"bytes"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"netchain/internal/kv"
)

// fillPattern builds a value of n bytes deterministically derived from a
// write id: every byte is a function of (id, index), so any mix of two
// writes is detectable.
func fillPattern(dst []byte, id uint64) {
	for i := range dst {
		dst[i] = byte(id*131 + uint64(i)*7 + 13)
	}
}

// TestSeqlockNoTornReads hammers one slot with concurrent committers and
// lock-free readers under -race: every snapshot a reader observes must be
// the exact byte image and version of a single committed write — a torn
// read (bytes from two writes, or value/version mismatch) fails.
func TestSeqlockNoTornReads(t *testing.T) {
	p, err := NewPipeline(Config{Stages: 4, SlotBytes: 8, SlotsPerStage: 8, PPS: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := p.Alloc(kv.KeyFromUint64(1))
	if err != nil {
		t.Fatal(err)
	}
	// Value sizes straddle the line-rate boundary (32 B here) so both the
	// flat words and the overflow slab are exercised. Each write id is
	// recoverable from the version's Seq field, and the first 8 bytes of
	// the value carry it redundantly.
	const (
		writers   = 4
		readers   = 4
		perWriter = 3000
		valLen    = 48
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	write := func(w int) {
		defer wg.Done()
		buf := make([]byte, valLen)
		for i := 0; i < perWriter; i++ {
			id := uint64(w)*perWriter + uint64(i) + 1
			fillPattern(buf, id)
			binary.BigEndian.PutUint64(buf[:8], id)
			if err := p.Commit(loc, buf, kv.Version{Session: 1, Seq: id}, false); err != nil {
				t.Error(err)
				return
			}
		}
	}
	var torn atomic.Int64
	read := func() {
		defer wg.Done()
		var scratch []byte
		want := make([]byte, valLen)
		for !stop.Load() {
			val, ver, live := p.ReadLatest(loc, &scratch)
			if !live {
				continue // before the first commit
			}
			if len(val) != valLen {
				t.Errorf("snapshot length %d, want %d", len(val), valLen)
				torn.Add(1)
				return
			}
			id := binary.BigEndian.Uint64(val[:8])
			if ver.Seq != id {
				t.Errorf("version %v does not match value id %d", ver, id)
				torn.Add(1)
				return
			}
			fillPattern(want, id)
			binary.BigEndian.PutUint64(want[:8], id)
			if !bytes.Equal(val, want) {
				t.Errorf("torn read: value bytes do not match any single write (id %d)", id)
				torn.Add(1)
				return
			}
		}
	}
	var writersWG sync.WaitGroup
	writersWG.Add(writers)
	wg.Add(writers + readers)
	for w := 0; w < writers; w++ {
		go func(w int) { defer writersWG.Done(); write(w) }(w)
	}
	for r := 0; r < readers; r++ {
		go read()
	}
	writersWG.Wait() // readers overlap the entire write phase
	stop.Store(true)
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn reads observed", n)
	}
}

// TestSeqlockReadersDuringTombstone interleaves tombstones and rewrites
// with readers: a snapshot must be either a complete committed value or a
// clean miss, never a live-but-stale-length mix.
func TestSeqlockReadersDuringTombstone(t *testing.T) {
	p, _ := NewPipeline(Config{Stages: 2, SlotBytes: 8, SlotsPerStage: 4, PPS: 1e6})
	loc, _ := p.Alloc(kv.KeyFromUint64(9))
	const rounds = 2000
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		val := make([]byte, 16)
		for i := 1; i <= rounds; i++ {
			id := uint64(i)
			fillPattern(val, id)
			binary.BigEndian.PutUint64(val[:8], id)
			p.Commit(loc, val, kv.Version{Session: 1, Seq: id}, false)
			p.Commit(loc, nil, kv.Version{Session: 1, Seq: id}, true)
		}
		stop.Store(true)
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []byte
			want := make([]byte, 16)
			for !stop.Load() {
				val, ver, live := p.ReadLatest(loc, &scratch)
				if !live {
					continue
				}
				if len(val) != 16 {
					t.Errorf("live snapshot with length %d", len(val))
					return
				}
				id := binary.BigEndian.Uint64(val[:8])
				if ver.Seq != id {
					t.Errorf("version %v vs value id %d", ver, id)
					return
				}
				fillPattern(want, id)
				binary.BigEndian.PutUint64(want[:8], id)
				if !bytes.Equal(val, want) {
					t.Errorf("torn read at id %d", id)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReadLatestZeroAlloc pins the zero-allocation property of the read
// fast path once the scratch buffer has grown to the value size.
func TestReadLatestZeroAlloc(t *testing.T) {
	p, _ := NewPipeline(Tofino())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	val := make([]byte, 64)
	fillPattern(val, 42)
	if err := p.Commit(loc, val, kv.Version{Session: 1, Seq: 1}, false); err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	allocs := testing.AllocsPerRun(1000, func() {
		v, _, live := p.ReadLatest(loc, &scratch)
		if !live || len(v) != 64 {
			t.Fatal("read failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadLatest allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReadLatestForDetectsSlotReuse pins the GC race fix: a reader that
// resolved a key to a slot before the control plane freed it and reused
// the slot for another key must observe a miss or the original key's
// committed value — never the new tenant's bytes.
func TestReadLatestForDetectsSlotReuse(t *testing.T) {
	p, _ := NewPipeline(Config{Stages: 2, SlotBytes: 8, SlotsPerStage: 1, PPS: 1e6})
	oldKey, newKey := kv.KeyFromUint64(1), kv.KeyFromUint64(2)
	loc, err := p.Alloc(oldKey)
	if err != nil {
		t.Fatal(err)
	}
	oldVal := []byte("old-tenant")
	if err := p.Commit(loc, oldVal, kv.Version{Session: 1, Seq: 1}, false); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var scratch []byte
		for !stop.Load() {
			val, _, live := p.ReadLatestFor(oldKey, loc, &scratch)
			if live && !bytes.Equal(val, oldVal) {
				t.Errorf("read of old key returned new tenant's bytes %q", val)
				return
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if err := p.Free(oldKey); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Alloc(newKey); err != nil {
			t.Fatal(err)
		}
		p.Commit(loc, []byte("NEW-tenant"), kv.Version{Session: 9, Seq: uint64(i)}, false)
		if err := p.Free(newKey); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Alloc(oldKey); err != nil {
			t.Fatal(err)
		}
		p.Commit(loc, oldVal, kv.Version{Session: 1, Seq: uint64(i)}, false)
	}
	stop.Store(true)
	wg.Wait()
}
