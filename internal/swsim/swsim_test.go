package swsim

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"netchain/internal/kv"
)

func smallCfg() Config {
	return Config{Stages: 4, SlotBytes: 8, SlotsPerStage: 16, PPS: 1e6}
}

func TestConfigDerived(t *testing.T) {
	c := Tofino()
	if c.LineRateValueBytes() != 128 {
		t.Fatalf("line-rate bytes = %d, want 128", c.LineRateValueBytes())
	}
	if c.StorageBytes() != 8*1024*1024 {
		t.Fatalf("storage = %d, want 8MB", c.StorageBytes())
	}
	if c.PassesFor(0) != 1 || c.PassesFor(128) != 1 {
		t.Fatal("values within one pass must cost 1 pass")
	}
	if c.PassesFor(129) != 2 || c.PassesFor(256) != 2 || c.PassesFor(257) != 3 {
		t.Fatal("recirculation pass count wrong")
	}
}

func TestRegisterArray(t *testing.T) {
	r := NewRegisterArray(4, 8)
	if r.Slots() != 4 {
		t.Fatalf("slots = %d", r.Slots())
	}
	r.Write(2, []byte("abcdefgh"))
	if string(r.Read(2)) != "abcdefgh" {
		t.Fatalf("read back %q", r.Read(2))
	}
	r.Write(2, []byte("xy"))
	want := append([]byte("xy"), make([]byte, 6)...)
	if !bytes.Equal(r.Read(2), want) {
		t.Fatalf("partial write must zero-fill, got %q", r.Read(2))
	}
	if !bytes.Equal(r.Read(1), make([]byte, 8)) {
		t.Fatal("neighbouring slot disturbed")
	}
}

func TestMatchTable(t *testing.T) {
	mt := NewMatchTable(2)
	k1, k2, k3 := kv.KeyFromUint64(1), kv.KeyFromUint64(2), kv.KeyFromUint64(3)
	if err := mt.Install(k1, 10); err != nil {
		t.Fatal(err)
	}
	if err := mt.Install(k1, 11); err == nil {
		t.Fatal("duplicate install must fail")
	}
	if err := mt.Install(k2, 11); err != nil {
		t.Fatal(err)
	}
	if err := mt.Install(k3, 12); err != kv.ErrNoSpace {
		t.Fatalf("over-capacity install = %v, want ErrNoSpace", err)
	}
	if loc, ok := mt.Lookup(k1); !ok || loc != 10 {
		t.Fatal("lookup k1 failed")
	}
	if loc, ok := mt.Remove(k1); !ok || loc != 10 {
		t.Fatal("remove k1 failed")
	}
	if _, ok := mt.Lookup(k1); ok {
		t.Fatal("k1 still present after remove")
	}
	if _, ok := mt.Remove(k1); ok {
		t.Fatal("double remove must report absent")
	}
	if mt.Len() != 1 || len(mt.Keys()) != 1 {
		t.Fatal("table accounting wrong")
	}
}

func TestPipelineAllocFree(t *testing.T) {
	p, err := NewPipeline(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	locs := map[int]bool{}
	for i := 0; i < 16; i++ {
		loc, err := p.Alloc(kv.KeyFromUint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if locs[loc] {
			t.Fatalf("slot %d allocated twice", loc)
		}
		locs[loc] = true
	}
	if _, err := p.Alloc(kv.KeyFromUint64(99)); err != kv.ErrNoSpace {
		t.Fatalf("full pipeline Alloc = %v, want ErrNoSpace", err)
	}
	if p.FreeSlots() != 0 || p.ItemCount() != 16 {
		t.Fatal("accounting wrong at full")
	}
	if err := p.Free(kv.KeyFromUint64(3)); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(kv.KeyFromUint64(3)); err != kv.ErrNotFound {
		t.Fatalf("double free = %v, want ErrNotFound", err)
	}
	if p.FreeSlots() != 1 {
		t.Fatal("freed slot not returned")
	}
	if _, err := p.Alloc(kv.KeyFromUint64(99)); err != nil {
		t.Fatal("slot reuse failed")
	}
}

func TestPipelineValueRoundTrip(t *testing.T) {
	p, _ := NewPipeline(smallCfg()) // 4 stages x 8B = 32B/pass, max 256B
	loc, _ := p.Alloc(kv.KeyFromUint64(7))

	if _, ok := p.ReadValue(loc); ok {
		t.Fatal("unwritten slot must read as absent")
	}
	for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33, 64, 255, 256} {
		v := make(kv.Value, n)
		for i := range v {
			v[i] = byte(i*7 + n)
		}
		if err := p.WriteValue(loc, v); err != nil {
			t.Fatalf("write %dB: %v", n, err)
		}
		got, ok := p.ReadValue(loc)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("read back %dB mismatch (ok=%v)", n, ok)
		}
		buf := make([]byte, 256)
		m, ok := p.ReadValueInto(buf, loc)
		if !ok || !bytes.Equal(buf[:m], v) {
			t.Fatalf("ReadValueInto %dB mismatch", n)
		}
	}
	if err := p.WriteValue(loc, make(kv.Value, 257)); err != kv.ErrTooLarge {
		t.Fatalf("oversized write = %v, want ErrTooLarge", err)
	}
}

func TestPipelineShorterRewriteClearsOldBytes(t *testing.T) {
	p, _ := NewPipeline(smallCfg())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	long := bytes.Repeat([]byte{0xff}, 64)
	p.WriteValue(loc, long)
	p.WriteValue(loc, []byte("ab"))
	got, ok := p.ReadValue(loc)
	if !ok || string(got) != "ab" {
		t.Fatalf("got %q after shrink", got)
	}
}

func TestPipelineTombstone(t *testing.T) {
	p, _ := NewPipeline(smallCfg())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	p.WriteValue(loc, []byte("x"))
	p.Tombstone(loc)
	if _, ok := p.ReadValue(loc); ok {
		t.Fatal("tombstoned slot must read as absent")
	}
	// A later write resurrects the slot (new insert reusing the entry).
	p.WriteValue(loc, []byte("y"))
	if v, ok := p.ReadValue(loc); !ok || string(v) != "y" {
		t.Fatal("write after tombstone failed")
	}
}

func TestPipelineVersion(t *testing.T) {
	p, _ := NewPipeline(smallCfg())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	if !p.Version(loc).IsZero() {
		t.Fatal("fresh slot version must be zero")
	}
	v := kv.Version{Session: 2, Seq: 9}
	p.SetVersion(loc, v)
	if p.Version(loc) != v {
		t.Fatal("version round trip failed")
	}
}

func TestPipelinePacketAccounting(t *testing.T) {
	p, _ := NewPipeline(smallCfg()) // 32B per pass
	if n := p.CountPacket(16); n != 1 {
		t.Fatalf("passes = %d, want 1", n)
	}
	if n := p.CountPacket(33); n != 2 {
		t.Fatalf("passes = %d, want 2", n)
	}
	pk, ps := p.Stats()
	if pk != 2 || ps != 3 {
		t.Fatalf("stats = %d pkts %d passes, want 2, 3", pk, ps)
	}
}

func TestPipelineMemoryAccounting(t *testing.T) {
	p, _ := NewPipeline(smallCfg())
	loc1, _ := p.Alloc(kv.KeyFromUint64(1))
	loc2, _ := p.Alloc(kv.KeyFromUint64(2))
	p.WriteValue(loc1, make(kv.Value, 1))  // rounds to one 8B slot
	p.WriteValue(loc2, make(kv.Value, 20)) // rounds to three 8B slots
	if m := p.MemoryBytes(); m != 8+24 {
		t.Fatalf("memory = %d, want 32", m)
	}
	p.Tombstone(loc2)
	if m := p.MemoryBytes(); m != 8 {
		t.Fatalf("memory after tombstone = %d, want 8", m)
	}
}

func TestPipelineValuePropertyRoundTrip(t *testing.T) {
	p, _ := NewPipeline(smallCfg())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	f := func(raw []byte) bool {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		if err := p.WriteValue(loc, raw); err != nil {
			return false
		}
		got, ok := p.ReadValue(loc)
		return ok && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func BenchmarkPipelineWrite64(b *testing.B) {
	p, _ := NewPipeline(Tofino())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	v := make(kv.Value, 64)
	rand.New(rand.NewSource(1)).Read(v)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.WriteValue(loc, v)
	}
}

func BenchmarkPipelineReadInto64(b *testing.B) {
	p, _ := NewPipeline(Tofino())
	loc, _ := p.Alloc(kv.KeyFromUint64(1))
	p.WriteValue(loc, make(kv.Value, 64))
	buf := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ReadValueInto(buf, loc)
	}
}
