// Package ring implements NetChain's data partitioning (§4.1): consistent
// hashing with virtual nodes. Keys are mapped to a hash ring; each switch
// owns m/n virtual nodes; the keys of each ring segment are assigned to the
// f+1 subsequent virtual nodes that belong to distinct switches.
//
// Each virtual node doubles as a *virtual group* (§5.2): failure recovery
// proceeds one group at a time so that only 1/groups of the key space loses
// write availability at any instant.
package ring

import (
	"fmt"
	"sort"

	"netchain/internal/kv"
	"netchain/internal/packet"
)

// Config parameterizes a Ring.
type Config struct {
	// VNodesPerSwitch is the number of virtual nodes (= virtual groups)
	// each switch owns. The paper's Fig. 10(b) uses 100.
	VNodesPerSwitch int
	// Replicas is the chain length f+1. The paper's testbed uses 3.
	Replicas int
	// Seed salts the placement hash so distinct deployments shuffle
	// differently while remaining deterministic under test.
	Seed uint64
}

// DefaultConfig mirrors the paper's testbed: 3-way replication.
func DefaultConfig() Config {
	return Config{VNodesPerSwitch: 100, Replicas: 3, Seed: 0x6e6574636861696e}
}

// vnode is one position on the ring.
type vnode struct {
	point uint64      // position on the ring
	owner packet.Addr // switch that owns this virtual node
	group GroupID     // stable virtual-group identifier
}

// GroupID names a virtual group. Group ids are stable across reassignment:
// when a failed switch's virtual nodes move to live switches, the ids (and
// therefore the key→group mapping) do not change — only the chains do.
type GroupID int

// Chain is the replica chain serving one virtual group, head first.
type Chain struct {
	Group GroupID
	Hops  []packet.Addr // head .. tail, all distinct switches
}

// Head returns the chain head (first hop of writes).
func (c Chain) Head() packet.Addr { return c.Hops[0] }

// Tail returns the chain tail (serves reads, replies to writes).
func (c Chain) Tail() packet.Addr { return c.Hops[len(c.Hops)-1] }

// Contains reports whether sw is a member of the chain.
func (c Chain) Contains(sw packet.Addr) bool {
	for _, h := range c.Hops {
		if h == sw {
			return true
		}
	}
	return false
}

// Equal reports whether two chains serve the same group through the same
// hops in the same order.
func (c Chain) Equal(o Chain) bool {
	if c.Group != o.Group || len(c.Hops) != len(o.Hops) {
		return false
	}
	for i, h := range c.Hops {
		if h != o.Hops[i] {
			return false
		}
	}
	return true
}

// clone returns an independent copy of the chain.
func (c Chain) clone() Chain {
	return Chain{Group: c.Group, Hops: append([]packet.Addr(nil), c.Hops...)}
}

// Ring is the partitioning state. It is a value owned by the controller;
// clients hold immutable snapshots of the derived chains.
type Ring struct {
	cfg      Config
	switches []packet.Addr
	vnodes   []vnode // sorted by point
	// nextGroup is the next unassigned group id. Group ids are never
	// reused: a group retired by a scale-in keeps its id forever, so
	// session numbers installed in switches for a dead group can never
	// collide with a group created by a later scale-out. Because the wire
	// format carries group ids in a 16-bit field, Resize refuses to
	// allocate past MaxGroupID — that cap is what makes "never reused"
	// hold all the way down to the truncated id the dataplane sees.
	nextGroup GroupID
	// placed overrides the hash-derived chain of individual groups with an
	// explicitly planned one (bottleneck-aware placement on fabrics). The
	// key→group mapping is untouched — only where a group's chain lives.
	placed map[GroupID][]packet.Addr
}

// MaxGroupID bounds cumulative group allocation: the packet header's group
// field (and the switch session/freeze tables keyed on it) is 16 bits, so
// ids must stay unique without truncation.
const MaxGroupID = GroupID(1 << 16)

// New builds a ring over the given switches.
func New(cfg Config, switches []packet.Addr) (*Ring, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("ring: replicas must be >= 1, got %d", cfg.Replicas)
	}
	if cfg.VNodesPerSwitch < 1 {
		return nil, fmt.Errorf("ring: vnodes per switch must be >= 1, got %d", cfg.VNodesPerSwitch)
	}
	if len(switches) < cfg.Replicas {
		return nil, fmt.Errorf("ring: %d switches cannot host %d-replica chains",
			len(switches), cfg.Replicas)
	}
	seen := make(map[packet.Addr]bool, len(switches))
	for _, s := range switches {
		if seen[s] {
			return nil, fmt.Errorf("ring: duplicate switch %v", s)
		}
		seen[s] = true
	}
	r := &Ring{cfg: cfg, switches: append([]packet.Addr(nil), switches...)}
	g := GroupID(0)
	for _, sw := range r.switches {
		for i := 0; i < cfg.VNodesPerSwitch; i++ {
			r.vnodes = append(r.vnodes, vnode{
				point: pointHash(cfg.Seed, sw, i),
				owner: sw,
				group: g,
			})
			g++
		}
	}
	r.nextGroup = g
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.point != b.point {
			return a.point < b.point
		}
		return a.group < b.group // deterministic tie-break
	})
	return r, nil
}

// Switches returns the ring membership.
func (r *Ring) Switches() []packet.Addr {
	return append([]packet.Addr(nil), r.switches...)
}

// Groups returns the total number of virtual groups.
func (r *Ring) Groups() int { return len(r.vnodes) }

// Replicas returns the chain length f+1.
func (r *Ring) Replicas() int { return r.cfg.Replicas }

// GroupForKey maps a key to the virtual group owning its ring segment.
func (r *Ring) GroupForKey(k kv.Key) GroupID {
	return r.vnodes[r.vnodeIndexForKey(k)].group
}

// ChainForKey returns the replica chain serving k.
func (r *Ring) ChainForKey(k kv.Key) Chain {
	return r.chainAt(r.vnodeIndexForKey(k))
}

// ChainForGroup returns the replica chain serving group g.
func (r *Ring) ChainForGroup(g GroupID) (Chain, error) {
	for i, v := range r.vnodes {
		if v.group == g {
			return r.chainAt(i), nil
		}
	}
	return Chain{}, fmt.Errorf("ring: unknown group %d", g)
}

// Chains enumerates every virtual group's chain, keyed by group id.
func (r *Ring) Chains() map[GroupID]Chain {
	out := make(map[GroupID]Chain, len(r.vnodes))
	for i := range r.vnodes {
		c := r.chainAt(i)
		out[c.Group] = c
	}
	return out
}

// GroupsOfSwitch returns every group whose chain includes sw — the groups
// affected when sw fails. With n switches and m virtual nodes the expected
// count is m(f+1)/n (§5.1).
func (r *Ring) GroupsOfSwitch(sw packet.Addr) []GroupID {
	var out []GroupID
	for i := range r.vnodes {
		c := r.chainAt(i)
		if c.Contains(sw) {
			out = append(out, c.Group)
		}
	}
	return out
}

// Reassign moves every virtual node owned by failed to replacement
// switches chosen by pick (called once per moved vnode; §5.2 assigns them
// randomly to spread recovery load). The failed switch leaves membership.
func (r *Ring) Reassign(failed packet.Addr, pick func(i int) packet.Addr) error {
	idx := -1
	for i, s := range r.switches {
		if s == failed {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("ring: switch %v is not a member", failed)
	}
	if len(r.switches)-1 < r.cfg.Replicas {
		return fmt.Errorf("ring: removing %v leaves %d switches for %d-replica chains",
			failed, len(r.switches)-1, r.cfg.Replicas)
	}
	r.switches = append(r.switches[:idx], r.switches[idx+1:]...)
	moved := 0
	for i := range r.vnodes {
		if r.vnodes[i].owner != failed {
			continue
		}
		nw := pick(moved)
		if nw == failed {
			return fmt.Errorf("ring: replacement for vnode %d is the failed switch", i)
		}
		ok := false
		for _, s := range r.switches {
			if s == nw {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("ring: replacement %v is not a live member", nw)
		}
		r.vnodes[i].owner = nw
		moved++
	}
	// Patch explicitly placed chains that included the failed switch: the
	// failed hop is replaced through the same pick function, retrying past
	// replacements already in the chain so hops stay distinct.
	for _, g := range r.placedGroups() {
		hops := r.placed[g]
		for hi, h := range hops {
			if h != failed {
				continue
			}
			var nw packet.Addr
			found := false
			for attempt := 0; attempt < 2*len(r.switches); attempt++ {
				cand := pick(moved)
				moved++
				if cand == failed {
					return fmt.Errorf("ring: replacement for placed group %d is the failed switch", g)
				}
				ok := false
				for _, s := range r.switches {
					if s == cand {
						ok = true
						break
					}
				}
				if !ok {
					return fmt.Errorf("ring: replacement %v for placed group %d is not a live member", cand, g)
				}
				dup := false
				for _, other := range hops {
					if other == cand {
						dup = true
						break
					}
				}
				if !dup {
					nw, found = cand, true
					break
				}
			}
			if !found {
				return fmt.Errorf("ring: no distinct replacement for placed group %d", g)
			}
			hops[hi] = nw
		}
	}
	return nil
}

// placedGroups returns the overridden group ids in ascending order so
// placement patching is deterministic.
func (r *Ring) placedGroups() []GroupID {
	out := make([]GroupID, 0, len(r.placed))
	for g := range r.placed {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddMember admits a switch into membership without assigning it virtual
// nodes: it becomes eligible as a reassignment target during failure
// recovery (the testbed's spare S3, §8.4) but owns no key ranges yet.
func (r *Ring) AddMember(sw packet.Addr) error {
	for _, s := range r.switches {
		if s == sw {
			return fmt.Errorf("ring: switch %v already a member", sw)
		}
	}
	r.switches = append(r.switches, sw)
	return nil
}

// IsMember reports whether sw is in the ring membership.
func (r *Ring) IsMember(sw packet.Addr) bool {
	for _, s := range r.switches {
		if s == sw {
			return true
		}
	}
	return false
}

// AddSwitch admits a new switch and gives it its own virtual nodes (new
// switch onboarding is handled like failure recovery, §5 overview).
func (r *Ring) AddSwitch(sw packet.Addr) error {
	_, err := r.Resize([]packet.Addr{sw}, nil)
	return err
}

// ---------------------------------------------------------------------------
// Planned elastic reconfiguration: the scale-free half of the paper's title.
// Consistent hashing makes growth incremental (§4.1): adding a switch's
// virtual nodes splits existing ring segments, removing them merges segments
// into their successors — either way only the affected segments' key ranges
// move, and Diff names exactly which virtual groups must migrate.

// Delta records one virtual group's chain change across a Resize.
// Zero-length Old.Hops marks a group created by the resize (a new virtual
// node); zero-length New.Hops marks a group retired by it (its key range
// merged into the clockwise successor group).
type Delta struct {
	Group GroupID
	Old   Chain
	New   Chain
}

// Created reports whether the delta describes a brand-new group.
func (d Delta) Created() bool { return len(d.Old.Hops) == 0 }

// Retired reports whether the delta describes a removed group.
func (d Delta) Retired() bool { return len(d.New.Hops) == 0 }

// Diff summarizes a Resize: the membership change plus the per-group chain
// deltas the migration engine must execute. Groups absent from Deltas kept
// their chain bit-for-bit and need no data movement.
type Diff struct {
	Added   []packet.Addr
	Removed []packet.Addr
	Deltas  map[GroupID]Delta
}

// Groups returns the delta group ids in ascending order (deterministic
// migration schedules).
func (d Diff) Groups() []GroupID {
	out := make([]GroupID, 0, len(d.Deltas))
	for g := range d.Deltas {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Resize applies a planned membership change: switches in add join with
// their own virtual nodes (fresh group ids), switches in remove leave and
// their virtual nodes are deleted — the removed key ranges merge into the
// clockwise successor groups. It returns the Diff between the chain layouts
// before and after. The ring itself moves atomically; executing the data
// migration the Diff implies is the controller's job.
func (r *Ring) Resize(add, remove []packet.Addr) (Diff, error) {
	seen := make(map[packet.Addr]bool, len(add)+len(remove))
	for _, sw := range add {
		if seen[sw] {
			return Diff{}, fmt.Errorf("ring: duplicate switch %v in resize", sw)
		}
		seen[sw] = true
		if r.IsMember(sw) {
			return Diff{}, fmt.Errorf("ring: switch %v already a member", sw)
		}
	}
	for _, sw := range remove {
		if seen[sw] {
			return Diff{}, fmt.Errorf("ring: duplicate switch %v in resize", sw)
		}
		seen[sw] = true
		if !r.IsMember(sw) {
			return Diff{}, fmt.Errorf("ring: switch %v is not a member", sw)
		}
	}
	if n := len(r.switches) + len(add) - len(remove); n < r.cfg.Replicas {
		return Diff{}, fmt.Errorf("ring: resize leaves %d switches for %d-replica chains",
			n, r.cfg.Replicas)
	}
	if next := int(r.nextGroup) + len(add)*r.cfg.VNodesPerSwitch; next > int(MaxGroupID) {
		return Diff{}, fmt.Errorf("ring: resize would allocate group ids past %d "+
			"(the packet group field is 16 bits and ids are never reused); "+
			"rebuild the ring to compact ids", MaxGroupID)
	}
	before := r.Chains()

	removing := make(map[packet.Addr]bool, len(remove))
	for _, sw := range remove {
		removing[sw] = true
	}
	if len(remove) > 0 {
		kept := r.vnodes[:0]
		for _, v := range r.vnodes {
			if !removing[v.owner] {
				kept = append(kept, v)
			}
		}
		r.vnodes = kept
		members := r.switches[:0]
		for _, sw := range r.switches {
			if !removing[sw] {
				members = append(members, sw)
			}
		}
		r.switches = members
	}
	for _, sw := range add {
		r.switches = append(r.switches, sw)
		for i := 0; i < r.cfg.VNodesPerSwitch; i++ {
			r.vnodes = append(r.vnodes, vnode{
				point: pointHash(r.cfg.Seed, sw, i),
				owner: sw,
				group: r.nextGroup,
			})
			r.nextGroup++
		}
	}
	// Drop explicit placements the membership change invalidated: chains
	// naming a removed switch fall back to their hash-derived walk (the
	// migration engine then moves their data like any other delta), and
	// retired groups' overrides go with them.
	if len(r.placed) > 0 {
		alive := make(map[GroupID]bool, len(r.vnodes))
		for _, v := range r.vnodes {
			alive[v.group] = true
		}
		for g, hops := range r.placed {
			drop := !alive[g]
			for _, h := range hops {
				if removing[h] {
					drop = true
					break
				}
			}
			if drop {
				delete(r.placed, g)
			}
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.point != b.point {
			return a.point < b.point
		}
		return a.group < b.group
	})

	after := r.Chains()
	diff := Diff{
		Added:   append([]packet.Addr(nil), add...),
		Removed: append([]packet.Addr(nil), remove...),
		Deltas:  make(map[GroupID]Delta),
	}
	for g, old := range before {
		nw, ok := after[g]
		if !ok {
			diff.Deltas[g] = Delta{Group: g, Old: old, New: Chain{Group: g}}
			continue
		}
		if !old.Equal(nw) {
			diff.Deltas[g] = Delta{Group: g, Old: old, New: nw}
		}
	}
	for g, nw := range after {
		if _, ok := before[g]; !ok {
			diff.Deltas[g] = Delta{Group: g, Old: Chain{Group: g}, New: nw}
		}
	}
	return diff, nil
}

func (r *Ring) vnodeIndexForKey(k kv.Key) int {
	p := keyHash(r.cfg.Seed, k)
	// First vnode clockwise from p.
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].point >= p })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// SetPlacement overrides the hash-derived chains of the given groups with
// explicitly planned ones (the bottleneck-aware planner's output). Each
// chain must have exactly Replicas distinct hops, all current members,
// and each group must exist. Key→group mapping is unaffected: a key still
// hashes to its ring segment; only the chain serving that segment moves.
// Passing a group already overridden replaces its plan. The override
// survives until the group is patched by Reassign (member failure),
// dropped by Resize (member removal), or cleared by ClearPlacement.
func (r *Ring) SetPlacement(plans map[GroupID][]packet.Addr) error {
	known := make(map[GroupID]bool, len(r.vnodes))
	for _, v := range r.vnodes {
		known[v.group] = true
	}
	validated := make(map[GroupID][]packet.Addr, len(plans))
	for g, hops := range plans {
		if !known[g] {
			return fmt.Errorf("ring: placement for unknown group %d", g)
		}
		if len(hops) != r.cfg.Replicas {
			return fmt.Errorf("ring: placement for group %d has %d hops, want %d",
				g, len(hops), r.cfg.Replicas)
		}
		seen := make(map[packet.Addr]bool, len(hops))
		for _, h := range hops {
			if seen[h] {
				return fmt.Errorf("ring: placement for group %d repeats switch %v", g, h)
			}
			seen[h] = true
			if !r.IsMember(h) {
				return fmt.Errorf("ring: placement for group %d names non-member %v", g, h)
			}
		}
		validated[g] = append([]packet.Addr(nil), hops...)
	}
	if r.placed == nil {
		r.placed = make(map[GroupID][]packet.Addr, len(validated))
	}
	for g, hops := range validated {
		r.placed[g] = hops
	}
	return nil
}

// ClearPlacement removes the explicit placement of the given groups (all
// overrides when called with no arguments), returning them to their
// hash-derived chains.
func (r *Ring) ClearPlacement(groups ...GroupID) {
	if len(groups) == 0 {
		r.placed = nil
		return
	}
	for _, g := range groups {
		delete(r.placed, g)
	}
}

// Placed returns the explicitly placed chain of g, if any.
func (r *Ring) Placed(g GroupID) (Chain, bool) {
	hops, ok := r.placed[g]
	if !ok {
		return Chain{}, false
	}
	return Chain{Group: g, Hops: append([]packet.Addr(nil), hops...)}, true
}

// chainAt builds the chain anchored at vnode i: walk clockwise collecting
// the first Replicas *distinct* switches. When two subsequent virtual nodes
// live on the same switch the walk skips forward (§4.1). An explicit
// placement set via SetPlacement takes precedence over the walk.
func (r *Ring) chainAt(i int) Chain {
	if hops, ok := r.placed[r.vnodes[i].group]; ok {
		return Chain{Group: r.vnodes[i].group, Hops: append([]packet.Addr(nil), hops...)}
	}
	c := Chain{Group: r.vnodes[i].group}
	seen := make(map[packet.Addr]bool, r.cfg.Replicas)
	for j := 0; j < len(r.vnodes) && len(c.Hops) < r.cfg.Replicas; j++ {
		owner := r.vnodes[(i+j)%len(r.vnodes)].owner
		if seen[owner] {
			continue
		}
		seen[owner] = true
		c.Hops = append(c.Hops, owner)
	}
	return c
}

// pointHash places virtual node (sw, replica) on the ring.
func pointHash(seed uint64, sw packet.Addr, replica int) uint64 {
	h := fnv64(seed)
	h = fnv64Step(h, uint64(sw))
	h = fnv64Step(h, uint64(replica)+0x9e3779b97f4a7c15)
	return h
}

// keyHash places a key on the ring.
func keyHash(seed uint64, k kv.Key) uint64 {
	h := fnv64(seed)
	for i := 0; i < len(k); i += 8 {
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(k[i+j])
		}
		h = fnv64Step(h, v)
	}
	return h
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnv64(seed uint64) uint64 {
	return fnv64Step(fnvOffset, seed)
}

func fnv64Step(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
