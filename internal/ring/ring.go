// Package ring implements NetChain's data partitioning (§4.1): consistent
// hashing with virtual nodes. Keys are mapped to a hash ring; each switch
// owns m/n virtual nodes; the keys of each ring segment are assigned to the
// f+1 subsequent virtual nodes that belong to distinct switches.
//
// Each virtual node doubles as a *virtual group* (§5.2): failure recovery
// proceeds one group at a time so that only 1/groups of the key space loses
// write availability at any instant.
package ring

import (
	"fmt"
	"sort"

	"netchain/internal/kv"
	"netchain/internal/packet"
)

// Config parameterizes a Ring.
type Config struct {
	// VNodesPerSwitch is the number of virtual nodes (= virtual groups)
	// each switch owns. The paper's Fig. 10(b) uses 100.
	VNodesPerSwitch int
	// Replicas is the chain length f+1. The paper's testbed uses 3.
	Replicas int
	// Seed salts the placement hash so distinct deployments shuffle
	// differently while remaining deterministic under test.
	Seed uint64
}

// DefaultConfig mirrors the paper's testbed: 3-way replication.
func DefaultConfig() Config {
	return Config{VNodesPerSwitch: 100, Replicas: 3, Seed: 0x6e6574636861696e}
}

// vnode is one position on the ring.
type vnode struct {
	point uint64      // position on the ring
	owner packet.Addr // switch that owns this virtual node
	group GroupID     // stable virtual-group identifier
}

// GroupID names a virtual group. Group ids are stable across reassignment:
// when a failed switch's virtual nodes move to live switches, the ids (and
// therefore the key→group mapping) do not change — only the chains do.
type GroupID int

// Chain is the replica chain serving one virtual group, head first.
type Chain struct {
	Group GroupID
	Hops  []packet.Addr // head .. tail, all distinct switches
}

// Head returns the chain head (first hop of writes).
func (c Chain) Head() packet.Addr { return c.Hops[0] }

// Tail returns the chain tail (serves reads, replies to writes).
func (c Chain) Tail() packet.Addr { return c.Hops[len(c.Hops)-1] }

// Contains reports whether sw is a member of the chain.
func (c Chain) Contains(sw packet.Addr) bool {
	for _, h := range c.Hops {
		if h == sw {
			return true
		}
	}
	return false
}

// clone returns an independent copy of the chain.
func (c Chain) clone() Chain {
	return Chain{Group: c.Group, Hops: append([]packet.Addr(nil), c.Hops...)}
}

// Ring is the partitioning state. It is a value owned by the controller;
// clients hold immutable snapshots of the derived chains.
type Ring struct {
	cfg      Config
	switches []packet.Addr
	vnodes   []vnode // sorted by point
}

// New builds a ring over the given switches.
func New(cfg Config, switches []packet.Addr) (*Ring, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("ring: replicas must be >= 1, got %d", cfg.Replicas)
	}
	if cfg.VNodesPerSwitch < 1 {
		return nil, fmt.Errorf("ring: vnodes per switch must be >= 1, got %d", cfg.VNodesPerSwitch)
	}
	if len(switches) < cfg.Replicas {
		return nil, fmt.Errorf("ring: %d switches cannot host %d-replica chains",
			len(switches), cfg.Replicas)
	}
	seen := make(map[packet.Addr]bool, len(switches))
	for _, s := range switches {
		if seen[s] {
			return nil, fmt.Errorf("ring: duplicate switch %v", s)
		}
		seen[s] = true
	}
	r := &Ring{cfg: cfg, switches: append([]packet.Addr(nil), switches...)}
	g := GroupID(0)
	for _, sw := range r.switches {
		for i := 0; i < cfg.VNodesPerSwitch; i++ {
			r.vnodes = append(r.vnodes, vnode{
				point: pointHash(cfg.Seed, sw, i),
				owner: sw,
				group: g,
			})
			g++
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.point != b.point {
			return a.point < b.point
		}
		return a.group < b.group // deterministic tie-break
	})
	return r, nil
}

// Switches returns the ring membership.
func (r *Ring) Switches() []packet.Addr {
	return append([]packet.Addr(nil), r.switches...)
}

// Groups returns the total number of virtual groups.
func (r *Ring) Groups() int { return len(r.vnodes) }

// Replicas returns the chain length f+1.
func (r *Ring) Replicas() int { return r.cfg.Replicas }

// GroupForKey maps a key to the virtual group owning its ring segment.
func (r *Ring) GroupForKey(k kv.Key) GroupID {
	return r.vnodes[r.vnodeIndexForKey(k)].group
}

// ChainForKey returns the replica chain serving k.
func (r *Ring) ChainForKey(k kv.Key) Chain {
	return r.chainAt(r.vnodeIndexForKey(k))
}

// ChainForGroup returns the replica chain serving group g.
func (r *Ring) ChainForGroup(g GroupID) (Chain, error) {
	for i, v := range r.vnodes {
		if v.group == g {
			return r.chainAt(i), nil
		}
	}
	return Chain{}, fmt.Errorf("ring: unknown group %d", g)
}

// Chains enumerates every virtual group's chain, keyed by group id.
func (r *Ring) Chains() map[GroupID]Chain {
	out := make(map[GroupID]Chain, len(r.vnodes))
	for i := range r.vnodes {
		c := r.chainAt(i)
		out[c.Group] = c
	}
	return out
}

// GroupsOfSwitch returns every group whose chain includes sw — the groups
// affected when sw fails. With n switches and m virtual nodes the expected
// count is m(f+1)/n (§5.1).
func (r *Ring) GroupsOfSwitch(sw packet.Addr) []GroupID {
	var out []GroupID
	for i := range r.vnodes {
		c := r.chainAt(i)
		if c.Contains(sw) {
			out = append(out, c.Group)
		}
	}
	return out
}

// Reassign moves every virtual node owned by failed to replacement
// switches chosen by pick (called once per moved vnode; §5.2 assigns them
// randomly to spread recovery load). The failed switch leaves membership.
func (r *Ring) Reassign(failed packet.Addr, pick func(i int) packet.Addr) error {
	idx := -1
	for i, s := range r.switches {
		if s == failed {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("ring: switch %v is not a member", failed)
	}
	if len(r.switches)-1 < r.cfg.Replicas {
		return fmt.Errorf("ring: removing %v leaves %d switches for %d-replica chains",
			failed, len(r.switches)-1, r.cfg.Replicas)
	}
	r.switches = append(r.switches[:idx], r.switches[idx+1:]...)
	moved := 0
	for i := range r.vnodes {
		if r.vnodes[i].owner != failed {
			continue
		}
		nw := pick(moved)
		if nw == failed {
			return fmt.Errorf("ring: replacement for vnode %d is the failed switch", i)
		}
		ok := false
		for _, s := range r.switches {
			if s == nw {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("ring: replacement %v is not a live member", nw)
		}
		r.vnodes[i].owner = nw
		moved++
	}
	return nil
}

// AddMember admits a switch into membership without assigning it virtual
// nodes: it becomes eligible as a reassignment target during failure
// recovery (the testbed's spare S3, §8.4) but owns no key ranges yet.
func (r *Ring) AddMember(sw packet.Addr) error {
	for _, s := range r.switches {
		if s == sw {
			return fmt.Errorf("ring: switch %v already a member", sw)
		}
	}
	r.switches = append(r.switches, sw)
	return nil
}

// IsMember reports whether sw is in the ring membership.
func (r *Ring) IsMember(sw packet.Addr) bool {
	for _, s := range r.switches {
		if s == sw {
			return true
		}
	}
	return false
}

// AddSwitch admits a new switch and gives it its own virtual nodes (new
// switch onboarding is handled like failure recovery, §5 overview).
func (r *Ring) AddSwitch(sw packet.Addr) error {
	if err := r.AddMember(sw); err != nil {
		return err
	}
	g := GroupID(0)
	for _, v := range r.vnodes {
		if v.group >= g {
			g = v.group + 1
		}
	}
	for i := 0; i < r.cfg.VNodesPerSwitch; i++ {
		r.vnodes = append(r.vnodes, vnode{
			point: pointHash(r.cfg.Seed, sw, i),
			owner: sw,
			group: g,
		})
		g++
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.point != b.point {
			return a.point < b.point
		}
		return a.group < b.group
	})
	return nil
}

func (r *Ring) vnodeIndexForKey(k kv.Key) int {
	p := keyHash(r.cfg.Seed, k)
	// First vnode clockwise from p.
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].point >= p })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// chainAt builds the chain anchored at vnode i: walk clockwise collecting
// the first Replicas *distinct* switches. When two subsequent virtual nodes
// live on the same switch the walk skips forward (§4.1).
func (r *Ring) chainAt(i int) Chain {
	c := Chain{Group: r.vnodes[i].group}
	seen := make(map[packet.Addr]bool, r.cfg.Replicas)
	for j := 0; j < len(r.vnodes) && len(c.Hops) < r.cfg.Replicas; j++ {
		owner := r.vnodes[(i+j)%len(r.vnodes)].owner
		if seen[owner] {
			continue
		}
		seen[owner] = true
		c.Hops = append(c.Hops, owner)
	}
	return c
}

// pointHash places virtual node (sw, replica) on the ring.
func pointHash(seed uint64, sw packet.Addr, replica int) uint64 {
	h := fnv64(seed)
	h = fnv64Step(h, uint64(sw))
	h = fnv64Step(h, uint64(replica)+0x9e3779b97f4a7c15)
	return h
}

// keyHash places a key on the ring.
func keyHash(seed uint64, k kv.Key) uint64 {
	h := fnv64(seed)
	for i := 0; i < len(k); i += 8 {
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(k[i+j])
		}
		h = fnv64Step(h, v)
	}
	return h
}

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnv64(seed uint64) uint64 {
	return fnv64Step(fnvOffset, seed)
}

func fnv64Step(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
