package ring

import (
	"testing"

	"netchain/internal/kv"
	"netchain/internal/packet"
)

func testSwitches(n int) []packet.Addr {
	out := make([]packet.Addr, n)
	for i := range out {
		out[i] = packet.AddrFrom4(10, 0, 0, byte(i+1))
	}
	return out
}

func TestResizeScaleOutCreatesOnlyNewGroups(t *testing.T) {
	sws := testSwitches(4)
	r, err := New(Config{VNodesPerSwitch: 8, Replicas: 3, Seed: 7}, sws[:3])
	if err != nil {
		t.Fatal(err)
	}
	before := r.Chains()
	diff, err := r.Resize([]packet.Addr{sws[3]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) != 1 || diff.Added[0] != sws[3] || len(diff.Removed) != 0 {
		t.Fatalf("diff membership = %+v", diff)
	}
	created, retired, changed := 0, 0, 0
	for g, d := range diff.Deltas {
		switch {
		case d.Created():
			created++
			if _, existed := before[g]; existed {
				t.Fatalf("group %d marked created but existed", g)
			}
		case d.Retired():
			retired++
		default:
			changed++
			if before[g].Equal(d.New) {
				t.Fatalf("group %d delta with unchanged chain", g)
			}
		}
	}
	if created != 8 {
		t.Fatalf("created = %d, want 8 (one per new vnode)", created)
	}
	if retired != 0 {
		t.Fatalf("scale-out retired %d groups", retired)
	}
	// Every delta's New must match the ring's post-resize chains exactly.
	after := r.Chains()
	for g, d := range diff.Deltas {
		if d.Retired() {
			continue
		}
		if !after[g].Equal(d.New) {
			t.Fatalf("group %d: diff.New %v != ring chain %v", g, d.New.Hops, after[g].Hops)
		}
	}
	// Untouched groups really are untouched.
	for g, ch := range after {
		if _, inDiff := diff.Deltas[g]; inDiff {
			continue
		}
		if !before[g].Equal(ch) {
			t.Fatalf("group %d changed but is absent from the diff", g)
		}
	}
}

func TestResizeScaleInRetiresGroupsAndRemapsKeys(t *testing.T) {
	sws := testSwitches(4)
	r, err := New(Config{VNodesPerSwitch: 8, Replicas: 3, Seed: 7}, sws)
	if err != nil {
		t.Fatal(err)
	}
	// Keys owned by the doomed switch's groups must remap to surviving
	// groups after the resize.
	victim := sws[3]
	victimGroups := map[GroupID]bool{}
	for _, v := range r.vnodes {
		if v.owner == victim {
			victimGroups[v.group] = true
		}
	}
	var victimKeys []kv.Key
	for i := uint64(0); i < 4096 && len(victimKeys) < 16; i++ {
		k := kv.KeyFromUint64(i)
		if victimGroups[r.GroupForKey(k)] {
			victimKeys = append(victimKeys, k)
		}
	}
	if len(victimKeys) == 0 {
		t.Fatal("no keys landed on the victim's groups")
	}

	diff, err := r.Resize(nil, []packet.Addr{victim})
	if err != nil {
		t.Fatal(err)
	}
	retired := 0
	for _, d := range diff.Deltas {
		if d.Retired() {
			retired++
			if !victimGroups[d.Group] {
				t.Fatalf("retired group %d not owned by victim", d.Group)
			}
		}
	}
	if retired != 8 {
		t.Fatalf("retired = %d, want 8", retired)
	}
	if r.IsMember(victim) {
		t.Fatal("victim still a member")
	}
	for _, k := range victimKeys {
		g := r.GroupForKey(k)
		if victimGroups[g] {
			t.Fatalf("key %v still maps to retired group %d", k, g)
		}
		for _, h := range r.ChainForKey(k).Hops {
			if h == victim {
				t.Fatalf("key %v chain still includes the removed switch", k)
			}
		}
	}
}

func TestResizeGroupIDsNeverReused(t *testing.T) {
	sws := testSwitches(5)
	r, err := New(Config{VNodesPerSwitch: 4, Replicas: 3, Seed: 1}, sws[:4])
	if err != nil {
		t.Fatal(err)
	}
	// Remove the switch owning the highest group ids, then add a new one:
	// the new groups must NOT reuse the retired ids.
	if _, err := r.Resize(nil, []packet.Addr{sws[3]}); err != nil {
		t.Fatal(err)
	}
	diff, err := r.Resize([]packet.Addr{sws[4]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for g, d := range diff.Deltas {
		if d.Created() && g < GroupID(16) {
			t.Fatalf("created group %d reuses a retired id", g)
		}
	}
}

func TestResizeRefusesGroupIDOverflow(t *testing.T) {
	sws := testSwitches(4)
	// 60000 ids allocated at construction; adding a fourth switch's 20000
	// would cross the 16-bit group-id space the wire format carries.
	r, err := New(Config{VNodesPerSwitch: 20000, Replicas: 3, Seed: 1}, sws[:3])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resize([]packet.Addr{sws[3]}, nil); err == nil {
		t.Fatal("resize past the 16-bit group id space must be refused")
	}
	if r.IsMember(sws[3]) {
		t.Fatal("rejected resize mutated membership")
	}
}

func TestResizeValidation(t *testing.T) {
	sws := testSwitches(5)
	r, err := New(Config{VNodesPerSwitch: 4, Replicas: 3, Seed: 1}, sws[:3])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resize(nil, []packet.Addr{sws[0]}); err == nil {
		t.Fatal("removing below the replica floor must fail")
	}
	if _, err := r.Resize([]packet.Addr{sws[0]}, nil); err == nil {
		t.Fatal("adding an existing member must fail")
	}
	if _, err := r.Resize(nil, []packet.Addr{sws[4]}); err == nil {
		t.Fatal("removing a non-member must fail")
	}
	if _, err := r.Resize([]packet.Addr{sws[3], sws[3]}, nil); err == nil {
		t.Fatal("duplicate add must fail")
	}
	if _, err := r.Resize([]packet.Addr{sws[3]}, []packet.Addr{sws[3]}); err == nil {
		t.Fatal("overlapping add/remove must fail")
	}
	// Failed validation must leave the ring untouched.
	if got := r.Groups(); got != 12 {
		t.Fatalf("groups after rejected resizes = %d, want 12", got)
	}
	// Simultaneous add+remove (rolling replacement) works.
	diff, err := r.Resize([]packet.Addr{sws[3]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Groups()) == 0 {
		t.Fatal("empty diff for a real resize")
	}
	if _, err := r.Resize([]packet.Addr{sws[4]}, []packet.Addr{sws[0]}); err != nil {
		t.Fatal(err)
	}
	if r.IsMember(sws[0]) || !r.IsMember(sws[4]) {
		t.Fatal("rolling replacement membership wrong")
	}
}
