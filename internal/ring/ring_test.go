package ring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netchain/internal/kv"
	"netchain/internal/packet"
)

func switches(n int) []packet.Addr {
	out := make([]packet.Addr, n)
	for i := range out {
		out[i] = packet.AddrFrom4(10, 0, 0, byte(i+1))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{VNodesPerSwitch: 4, Replicas: 3}, switches(2)); err == nil {
		t.Fatal("too few switches must be rejected")
	}
	if _, err := New(Config{VNodesPerSwitch: 0, Replicas: 1}, switches(2)); err == nil {
		t.Fatal("zero vnodes must be rejected")
	}
	if _, err := New(Config{VNodesPerSwitch: 4, Replicas: 0}, switches(2)); err == nil {
		t.Fatal("zero replicas must be rejected")
	}
	dup := switches(3)
	dup[2] = dup[0]
	if _, err := New(Config{VNodesPerSwitch: 4, Replicas: 2}, dup); err == nil {
		t.Fatal("duplicate switches must be rejected")
	}
}

func TestChainsHaveDistinctSwitches(t *testing.T) {
	cfg := Config{VNodesPerSwitch: 16, Replicas: 3, Seed: 7}
	r, err := New(cfg, switches(5))
	if err != nil {
		t.Fatal(err)
	}
	for g, c := range r.Chains() {
		if len(c.Hops) != 3 {
			t.Fatalf("group %d: chain length %d, want 3", g, len(c.Hops))
		}
		seen := map[packet.Addr]bool{}
		for _, h := range c.Hops {
			if seen[h] {
				t.Fatalf("group %d: duplicate switch %v in chain %v", g, h, c.Hops)
			}
			seen[h] = true
		}
	}
}

func TestChainForKeyMatchesGroup(t *testing.T) {
	r, err := New(Config{VNodesPerSwitch: 8, Replicas: 3, Seed: 1}, switches(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := kv.KeyFromUint64(uint64(i))
		c := r.ChainForKey(k)
		if c.Group != r.GroupForKey(k) {
			t.Fatalf("key %d: ChainForKey group %d != GroupForKey %d",
				i, c.Group, r.GroupForKey(k))
		}
		byGroup, err := r.ChainForGroup(c.Group)
		if err != nil {
			t.Fatal(err)
		}
		if byGroup.Head() != c.Head() || byGroup.Tail() != c.Tail() {
			t.Fatalf("key %d: group lookup disagrees with key lookup", i)
		}
	}
	if _, err := r.ChainForGroup(GroupID(99999)); err == nil {
		t.Fatal("unknown group must error")
	}
}

func TestKeyDistributionIsBalanced(t *testing.T) {
	n := 8
	r, err := New(Config{VNodesPerSwitch: 100, Replicas: 3, Seed: 42}, switches(n))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[packet.Addr]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		c := r.ChainForKey(kv.KeyFromUint64(rand.New(rand.NewSource(int64(i))).Uint64()))
		for _, h := range c.Hops {
			counts[h]++
		}
	}
	mean := float64(keys*3) / float64(n)
	for sw, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.6 || ratio > 1.4 {
			t.Errorf("switch %v holds %.0f%% of mean load", sw, 100*ratio)
		}
	}
}

func TestGroupsOfSwitchCount(t *testing.T) {
	// With n switches and m total vnodes, a failure affects about
	// m(f+1)/n groups (§5.1).
	n, per := 6, 50
	r, err := New(Config{VNodesPerSwitch: per, Replicas: 3, Seed: 3}, switches(n))
	if err != nil {
		t.Fatal(err)
	}
	m := n * per
	expect := float64(m*3) / float64(n)
	got := len(r.GroupsOfSwitch(switches(n)[0]))
	if f := float64(got); f < expect*0.7 || f > expect*1.3 {
		t.Fatalf("affected groups = %d, expected about %.0f", got, expect)
	}
}

func TestReassignRemovesFailedSwitch(t *testing.T) {
	sw := switches(5)
	r, err := New(Config{VNodesPerSwitch: 20, Replicas: 3, Seed: 9}, sw)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Chains()
	failed := sw[2]
	live := []packet.Addr{sw[0], sw[1], sw[3], sw[4]}
	rng := rand.New(rand.NewSource(1))
	if err := r.Reassign(failed, func(i int) packet.Addr {
		return live[rng.Intn(len(live))]
	}); err != nil {
		t.Fatal(err)
	}
	after := r.Chains()
	if len(after) != len(before) {
		t.Fatalf("group count changed: %d -> %d", len(before), len(after))
	}
	for g, c := range after {
		if c.Contains(failed) {
			t.Fatalf("group %d still contains failed switch", g)
		}
		if len(c.Hops) != 3 {
			t.Fatalf("group %d: chain length %d after reassign", g, len(c.Hops))
		}
	}
	// Groups that did not involve the failed switch keep their chains.
	unchanged := 0
	for g, c := range before {
		if !c.Contains(failed) {
			a := after[g]
			same := len(a.Hops) == len(c.Hops)
			if same {
				for i := range a.Hops {
					if a.Hops[i] != c.Hops[i] {
						same = false
						break
					}
				}
			}
			if same {
				unchanged++
			}
		}
	}
	if unchanged == 0 {
		t.Fatal("expected some unaffected chains to remain identical")
	}
}

func TestReassignValidation(t *testing.T) {
	sw := switches(3)
	r, _ := New(Config{VNodesPerSwitch: 4, Replicas: 3, Seed: 9}, sw)
	if err := r.Reassign(packet.AddrFrom4(9, 9, 9, 9), func(int) packet.Addr { return sw[0] }); err == nil {
		t.Fatal("unknown switch must error")
	}
	// Removing one of 3 switches leaves 2 < replicas: must refuse.
	if err := r.Reassign(sw[0], func(int) packet.Addr { return sw[1] }); err == nil {
		t.Fatal("reassign below replica count must error")
	}

	r2, _ := New(Config{VNodesPerSwitch: 4, Replicas: 2, Seed: 9}, sw)
	if err := r2.Reassign(sw[0], func(int) packet.Addr { return sw[0] }); err == nil {
		t.Fatal("picking the failed switch must error")
	}
}

func TestAddSwitch(t *testing.T) {
	sw := switches(3)
	r, _ := New(Config{VNodesPerSwitch: 10, Replicas: 3, Seed: 5}, sw)
	groupsBefore := r.Groups()
	nw := packet.AddrFrom4(10, 0, 0, 99)
	if err := r.AddSwitch(nw); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSwitch(nw); err == nil {
		t.Fatal("double add must error")
	}
	if r.Groups() != groupsBefore+10 {
		t.Fatalf("groups = %d, want %d", r.Groups(), groupsBefore+10)
	}
	found := 0
	for _, c := range r.Chains() {
		if c.Contains(nw) {
			found++
		}
	}
	if found == 0 {
		t.Fatal("new switch never appears in any chain")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(Config{VNodesPerSwitch: 32, Replicas: 3, Seed: 77}, switches(6))
	b, _ := New(Config{VNodesPerSwitch: 32, Replicas: 3, Seed: 77}, switches(6))
	f := func(raw uint64) bool {
		k := kv.KeyFromUint64(raw)
		ca, cb := a.ChainForKey(k), b.ChainForKey(k)
		if ca.Group != cb.Group || len(ca.Hops) != len(cb.Hops) {
			return false
		}
		for i := range ca.Hops {
			if ca.Hops[i] != cb.Hops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedChangesPlacement(t *testing.T) {
	a, _ := New(Config{VNodesPerSwitch: 32, Replicas: 3, Seed: 1}, switches(6))
	b, _ := New(Config{VNodesPerSwitch: 32, Replicas: 3, Seed: 2}, switches(6))
	diff := 0
	for i := 0; i < 200; i++ {
		k := kv.KeyFromUint64(uint64(i))
		if a.ChainForKey(k).Head() != b.ChainForKey(k).Head() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds should shuffle placement")
	}
}

func TestChainHelpers(t *testing.T) {
	c := Chain{Group: 1, Hops: []packet.Addr{1, 2, 3}}
	if c.Head() != 1 || c.Tail() != 3 {
		t.Fatal("Head/Tail wrong")
	}
	if !c.Contains(2) || c.Contains(9) {
		t.Fatal("Contains wrong")
	}
}
