package ring

import (
	"testing"

	"netchain/internal/kv"
	"netchain/internal/packet"
)

func placementRing(t *testing.T) *Ring {
	t.Helper()
	r, err := New(Config{VNodesPerSwitch: 8, Replicas: 3, Seed: 7}, switches(6))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSetPlacementOverridesChain(t *testing.T) {
	r := placementRing(t)
	sw := r.Switches()
	want := []packet.Addr{sw[5], sw[1], sw[3]}
	if err := r.SetPlacement(map[GroupID][]packet.Addr{2: want}); err != nil {
		t.Fatal(err)
	}

	c, err := r.ChainForGroup(2)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range want {
		if c.Hops[i] != h {
			t.Fatalf("ChainForGroup(2) = %v, want %v", c.Hops, want)
		}
	}
	if got := r.Chains()[2]; !got.Equal(c) {
		t.Fatalf("Chains()[2] = %v disagrees with ChainForGroup %v", got, c)
	}
	if p, ok := r.Placed(2); !ok || !p.Equal(c) {
		t.Fatalf("Placed(2) = %v,%v, want %v", p, ok, c)
	}

	// Every key that hashed to group 2 still does, and is served by the
	// placed chain — key→group mapping must be untouched.
	found := false
	for b := 0; b < 255 && !found; b++ {
		k := kv.Key{0: byte(b)}
		if r.GroupForKey(k) != 2 {
			continue
		}
		found = true
		if kc := r.ChainForKey(k); !kc.Equal(c) {
			t.Fatalf("ChainForKey = %v, want placed %v", kc, c)
		}
	}
	if !found {
		t.Skip("no probe key landed in group 2")
	}
}

func TestSetPlacementReflectsInGroupsOfSwitch(t *testing.T) {
	r := placementRing(t)
	sw := r.Switches()
	plan := []packet.Addr{sw[0], sw[2], sw[4]}
	if err := r.SetPlacement(map[GroupID][]packet.Addr{5: plan}); err != nil {
		t.Fatal(err)
	}
	for _, member := range plan {
		has := false
		for _, g := range r.GroupsOfSwitch(member) {
			if g == 5 {
				has = true
			}
		}
		if !has {
			t.Fatalf("GroupsOfSwitch(%v) misses placed group 5", member)
		}
	}
	for _, g := range r.GroupsOfSwitch(sw[1]) {
		if g == 5 {
			t.Fatalf("GroupsOfSwitch(%v) still lists group 5 after it moved away", sw[1])
		}
	}
}

func TestSetPlacementValidation(t *testing.T) {
	r := placementRing(t)
	sw := r.Switches()
	cases := map[string]map[GroupID][]packet.Addr{
		"unknown group": {GroupID(9999): {sw[0], sw[1], sw[2]}},
		"short chain":   {1: {sw[0], sw[1]}},
		"long chain":    {1: {sw[0], sw[1], sw[2], sw[3]}},
		"repeat hop":    {1: {sw[0], sw[1], sw[0]}},
		"non-member":    {1: {sw[0], sw[1], packet.AddrFrom4(192, 168, 0, 1)}},
	}
	for name, plans := range cases {
		if err := r.SetPlacement(plans); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A failed batch must not partially apply.
	if _, ok := r.Placed(1); ok {
		t.Fatal("rejected placement partially applied")
	}
	// Re-placing an already-overridden group replaces the plan.
	if err := r.SetPlacement(map[GroupID][]packet.Addr{1: {sw[0], sw[1], sw[2]}}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetPlacement(map[GroupID][]packet.Addr{1: {sw[3], sw[4], sw[5]}}); err != nil {
		t.Fatal(err)
	}
	if p, _ := r.Placed(1); p.Hops[0] != sw[3] {
		t.Fatalf("re-placement did not replace: %v", p.Hops)
	}
}

func TestClearPlacementRestoresHashChain(t *testing.T) {
	r := placementRing(t)
	sw := r.Switches()
	orig, err := r.ChainForGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetPlacement(map[GroupID][]packet.Addr{
		3: {sw[5], sw[4], sw[3]},
		7: {sw[0], sw[2], sw[4]},
	}); err != nil {
		t.Fatal(err)
	}
	r.ClearPlacement(3)
	if c, _ := r.ChainForGroup(3); !c.Equal(orig) {
		t.Fatalf("ChainForGroup(3) after clear = %v, want hash chain %v", c, orig)
	}
	if _, ok := r.Placed(7); !ok {
		t.Fatal("ClearPlacement(3) dropped group 7's override")
	}
	r.ClearPlacement()
	if _, ok := r.Placed(7); ok {
		t.Fatal("ClearPlacement() left an override behind")
	}
}

func TestReassignPatchesPlacedChains(t *testing.T) {
	r := placementRing(t)
	sw := r.Switches()
	failed := sw[2]
	if err := r.SetPlacement(map[GroupID][]packet.Addr{
		0: {sw[0], failed, sw[4]}, // loses its mid to the failure
		4: {sw[1], sw[3], sw[5]},  // untouched
	}); err != nil {
		t.Fatal(err)
	}
	// Round-robin pick over the survivors; the first candidate for group 0's
	// patch is sw[0], already in the chain, so the retry loop must skip it.
	pool := []packet.Addr{sw[0], sw[1], sw[3], sw[4], sw[5]}
	if err := r.Reassign(failed, func(i int) packet.Addr { return pool[i%len(pool)] }); err != nil {
		t.Fatal(err)
	}
	p, ok := r.Placed(0)
	if !ok {
		t.Fatal("placed group 0 lost its override on Reassign")
	}
	seen := make(map[packet.Addr]bool)
	for _, h := range p.Hops {
		if h == failed {
			t.Fatalf("placed group 0 still routes through failed %v: %v", failed, p.Hops)
		}
		if seen[h] {
			t.Fatalf("placed group 0 repeats %v after patch: %v", h, p.Hops)
		}
		seen[h] = true
	}
	if p.Hops[0] != sw[0] || p.Hops[2] != sw[4] {
		t.Fatalf("patch disturbed surviving hops: %v", p.Hops)
	}
	if p2, _ := r.Placed(4); p2.Hops[0] != sw[1] || p2.Hops[1] != sw[3] || p2.Hops[2] != sw[5] {
		t.Fatalf("untouched placed group 4 changed: %v", p2.Hops)
	}
	// No chain anywhere may still contain the failed switch.
	for g, c := range r.Chains() {
		if c.Contains(failed) {
			t.Fatalf("group %d chain %v still contains failed %v", g, c.Hops, failed)
		}
	}
}

func TestResizeDropsInvalidatedPlacements(t *testing.T) {
	r := placementRing(t)
	sw := r.Switches()
	if err := r.SetPlacement(map[GroupID][]packet.Addr{
		0: {sw[0], sw[1], sw[2]}, // names the removed switch → dropped
		4: {sw[3], sw[4], sw[5]}, // survives
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resize(nil, []packet.Addr{sw[2]}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Placed(0); ok {
		t.Fatal("placement naming a removed switch survived Resize")
	}
	if c, err := r.ChainForGroup(0); err == nil {
		for _, h := range c.Hops {
			if h == sw[2] {
				t.Fatalf("group 0 fallback chain still has removed %v: %v", sw[2], c.Hops)
			}
		}
	}
	if _, ok := r.Placed(4); !ok {
		t.Fatal("unaffected placement dropped by Resize")
	}

	// Retiring the switch whose vnodes back a placed group drops that
	// override too, even when its hops survive.
	if err := r.SetPlacement(map[GroupID][]packet.Addr{
		8: {sw[3], sw[4], sw[5]}, // group 8 is owned by sw[1] (vnodes 8..15)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resize(nil, []packet.Addr{sw[1]}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Placed(8); ok {
		t.Fatal("override for retired group survived Resize")
	}
	if _, ok := r.Placed(4); !ok {
		t.Fatal("unaffected placement dropped by second Resize")
	}
}
