package packet

import (
	"bytes"
	"strings"
	"testing"

	"netchain/internal/kv"
)

// seedTracedFrame builds a valid traced frame carrying n hop records.
func seedTracedFrame(n int, val []byte, hops ...Addr) []byte {
	nc := &NetChain{Op: kv.OpWrite, Key: kv.KeyFromString("traced"), QueryID: 7, Value: val}
	if err := nc.SetChain(hops); err != nil {
		panic(err)
	}
	f := NewQuery(AddrFrom4(10, 1, 0, 1), AddrFrom4(10, 0, 0, 1), 4000, nc)
	f.EnableTrace()
	for i := 0; i < n; i++ {
		if !f.AppendTraceHop(TraceHop{
			SwitchID: uint32(i + 1), Stage: StageTransit,
			IngressNs: int64(1000 * i), EgressNs: int64(1000*i + 500),
			Queue: uint16(i), Shard: uint8(i),
		}) {
			panic("append failed")
		}
	}
	buf, err := f.Serialize(nil)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestTraceRoundTrip(t *testing.T) {
	wire := seedTracedFrame(3, []byte("v"), AddrFrom4(10, 0, 0, 2))
	var f Frame
	if err := f.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if !f.NC.Traced || f.NC.TraceHopCount() != 3 {
		t.Fatalf("traced=%v hops=%d", f.NC.Traced, f.NC.TraceHopCount())
	}
	hops := f.NC.TraceHops(nil)
	if len(hops) != 3 {
		t.Fatalf("parsed %d hops", len(hops))
	}
	for i, h := range hops {
		if h.SwitchID != uint32(i+1) || h.Stage != StageTransit ||
			h.IngressNs != int64(1000*i) || h.EgressNs != int64(1000*i+500) ||
			h.Queue != uint16(i) || h.Shard != uint8(i) {
			t.Fatalf("hop %d drifted: %+v", i, h)
		}
	}
	// Bit-exact re-encode.
	out, err := f.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, out) {
		t.Fatalf("traced wire image drifted:\n%x\n%x", wire, out)
	}
}

func TestTraceUntracedBitIdentical(t *testing.T) {
	// An untraced frame must carry a bare chain count in the SC byte and no
	// extension bytes — the exact pre-telemetry layout.
	wire := seedFrame(kv.OpWrite, []byte("hello"), AddrFrom4(10, 0, 0, 2))
	sc := wire[EthernetLen+IPv4Len+UDPLen+5]
	if sc != 1 {
		t.Fatalf("untraced SC byte = %#02x, want chain count 1", sc)
	}
	var f Frame
	if err := f.Decode(wire); err != nil {
		t.Fatal(err)
	}
	if f.NC.Traced || f.NC.Trace != nil {
		t.Fatal("untraced frame decoded as traced")
	}
	if want := EthernetLen + IPv4Len + UDPLen + netchainFixedLen + 5 + 4; len(wire) != want {
		t.Fatalf("untraced wire len %d, want %d", len(wire), want)
	}
}

func TestTraceAppendCopiesAliasedRecords(t *testing.T) {
	wire := seedTracedFrame(1, nil)
	orig := append([]byte(nil), wire...)
	var f Frame
	if err := f.Decode(wire); err != nil {
		t.Fatal(err)
	}
	// f.NC.Trace aliases wire; appending must copy out, not scribble on it.
	if !f.AppendTraceHop(TraceHop{SwitchID: 99, Stage: StageTail}) {
		t.Fatal("append rejected")
	}
	if !bytes.Equal(wire, orig) {
		t.Fatal("append mutated the receive buffer")
	}
	if f.NC.TraceHopCount() != 2 {
		t.Fatalf("hops = %d", f.NC.TraceHopCount())
	}
	hops := f.NC.TraceHops(nil)
	if hops[0].SwitchID != 1 || hops[1].SwitchID != 99 {
		t.Fatalf("hops drifted: %+v", hops)
	}
}

func TestTraceAppendBounds(t *testing.T) {
	var f Frame
	f.NC.Op = kv.OpRead
	// Untraced: append is a no-op.
	if f.AppendTraceHop(TraceHop{SwitchID: 1}) {
		t.Fatal("append on untraced frame must be a no-op")
	}
	f.EnableTrace()
	for i := 0; i < MaxTraceHops; i++ {
		if !f.AppendTraceHop(TraceHop{SwitchID: uint32(i)}) {
			t.Fatalf("append %d rejected", i)
		}
	}
	if f.AppendTraceHop(TraceHop{SwitchID: 999}) {
		t.Fatal("append beyond MaxTraceHops must be dropped")
	}
	if f.NC.TraceHopCount() != MaxTraceHops {
		t.Fatalf("hops = %d", f.NC.TraceHopCount())
	}
}

func TestTraceDecodeErrors(t *testing.T) {
	full := seedTracedFrame(2, nil)
	nc := full[EthernetLen+IPv4Len+UDPLen:]

	// Flag set, hop-count byte missing.
	var h NetChain
	if err := h.DecodeFromBytes(nc[:netchainFixedLen]); err == nil ||
		!strings.Contains(err.Error(), "trace") {
		t.Fatalf("missing hop count: err = %v", err)
	}
	// Flag set, records truncated.
	if err := h.DecodeFromBytes(nc[:netchainFixedLen+1+TraceRecLen/2]); err == nil ||
		!strings.Contains(err.Error(), "trace") {
		t.Fatalf("truncated records: err = %v", err)
	}
	// Hop-count overflow.
	bad := append([]byte(nil), nc...)
	bad[netchainFixedLen] = MaxTraceHops + 1
	if err := h.DecodeFromBytes(bad); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Fatalf("hop overflow: err = %v", err)
	}
	// Flag set with zero records is valid.
	zero := append([]byte(nil), nc[:netchainFixedLen]...)
	zero = append(zero, 0)
	if err := h.DecodeFromBytes(zero); err != nil {
		t.Fatalf("zero-record trace must decode: %v", err)
	}
	if !h.Traced || h.TraceHopCount() != 0 {
		t.Fatalf("traced=%v hops=%d", h.Traced, h.TraceHopCount())
	}
	// Reserved SC bits without the trace flag still error (chain count 32).
	res := append([]byte(nil), nc[:netchainFixedLen]...)
	res[5] = 0x20
	if err := h.DecodeFromBytes(res); err == nil {
		t.Fatal("reserved SC bits must be rejected")
	}
}

func TestTraceSurvivesReplyAndClone(t *testing.T) {
	wire := seedTracedFrame(2, []byte("payload"), AddrFrom4(10, 0, 0, 2))
	var f Frame
	if err := f.Decode(wire); err != nil {
		t.Fatal(err)
	}
	// CloneTo into a pooled frame detaches the trace from the buffer.
	cl := GetFrame()
	f.CloneTo(cl)
	for i := range wire {
		wire[i] = 0xff // scribble over the original
	}
	if cl.NC.TraceHopCount() != 2 || cl.NC.TraceHops(nil)[1].SwitchID != 2 {
		t.Fatalf("clone lost trace: %d hops", cl.NC.TraceHopCount())
	}
	// ToReply keeps the accumulated trace (the reply carries it home).
	cl.ToReply(kv.StatusOK)
	if !cl.NC.Traced || cl.NC.TraceHopCount() != 2 {
		t.Fatal("reply dropped trace")
	}
	out, err := cl.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	var back Frame
	if err := back.Decode(out); err != nil {
		t.Fatal(err)
	}
	if back.NC.TraceHopCount() != 2 {
		t.Fatal("reply round trip lost trace")
	}
	PutFrame(cl)
	// A recycled frame must come back untraced.
	clean := GetFrame()
	if clean.NC.Traced || clean.NC.Trace != nil {
		t.Fatalf("pooled frame kept trace state: %+v", clean.NC)
	}
	PutFrame(clean)
}

// FuzzDecodeTraceExt stresses the telemetry extension decoder: truncated
// hop records, hop-count overflow, the flag bit set with zero records —
// the decoder must never panic, and whatever it accepts must round-trip.
// Untraced corpus entries (shared with FuzzDecodeFrame's seeds) must
// round-trip bit-identically.
func FuzzDecodeTraceExt(f *testing.F) {
	f.Add(seedTracedFrame(0, nil))
	f.Add(seedTracedFrame(1, []byte("v")))
	f.Add(seedTracedFrame(MaxTraceHops, nil))
	f.Add(seedTracedFrame(3, []byte("hello"), AddrFrom4(10, 0, 0, 2), AddrFrom4(10, 0, 0, 3)))
	// The untraced corpus rides along: the flag-off path must stay stable.
	f.Add(seedFrame(kv.OpWrite, []byte("hello"), AddrFrom4(10, 0, 0, 2)))
	f.Add(seedFrame(kv.OpRead, nil))
	whole := seedTracedFrame(2, []byte("x"), AddrFrom4(10, 0, 0, 2))
	for cut := 0; cut < len(whole); cut += 5 {
		f.Add(whole[:cut])
	}
	for i := 0; i < len(whole); i += 3 {
		flip := append([]byte(nil), whole...)
		flip[i] ^= 0x80
		f.Add(flip)
	}
	// Hop-count overflow and count/record mismatches.
	over := append([]byte(nil), whole...)
	over[EthernetLen+IPv4Len+UDPLen+netchainFixedLen] = 0xff
	f.Add(over)
	short := append([]byte(nil), whole...)
	short[EthernetLen+IPv4Len+UDPLen+netchainFixedLen] = MaxTraceHops
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.Decode(data); err != nil {
			return
		}
		if fr.NC.Traced {
			if fr.NC.TraceHopCount() > MaxTraceHops {
				t.Fatalf("accepted %d hops", fr.NC.TraceHopCount())
			}
			hops := fr.NC.TraceHops(nil)
			if len(hops) != fr.NC.TraceHopCount() {
				t.Fatalf("parse count %d != %d", len(hops), fr.NC.TraceHopCount())
			}
			// Appending to an accepted traced frame must always work below
			// the bound and keep the frame serializable.
			fr.AppendTraceHop(TraceHop{SwitchID: 1, Stage: StageIngest})
		}
		out, err := fr.Serialize(nil)
		if err != nil {
			t.Fatalf("accepted frame fails to serialize: %v", err)
		}
		var back Frame
		if err := back.Decode(out); err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if back.NC.Traced != fr.NC.Traced || back.NC.TraceHopCount() != fr.NC.TraceHopCount() {
			t.Fatalf("trace drifted: traced %v/%v hops %d/%d",
				back.NC.Traced, fr.NC.Traced, back.NC.TraceHopCount(), fr.NC.TraceHopCount())
		}
		// The canonical wire form must be a bit-identical fixed point:
		// decode(out) re-serializes to exactly out. (Arbitrary accepted
		// input may differ from out — the decoder tolerates length slack
		// and checksums that the serializer canonicalizes away.)
		out2, err := back.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical form not a fixed point:\n%x\n%x", out, out2)
		}
	})
}
