package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"netchain/internal/kv"
)

func TestAddrRoundTrip(t *testing.T) {
	a := AddrFrom4(10, 0, 1, 2)
	if a.String() != "10.0.1.2" {
		t.Fatalf("String() = %q", a.String())
	}
	b, err := ParseAddr("10.0.1.2")
	if err != nil || b != a {
		t.Fatalf("ParseAddr = %v, %v; want %v", b, err, a)
	}
	if _, err := ParseAddr("::1"); err == nil {
		t.Fatal("IPv6 must be rejected")
	}
	if _, err := ParseAddr("not-an-ip"); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if !Addr(0).IsZero() || a.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestAddrParseProperty(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		Src:       MAC{1, 2, 3, 4, 5, 6},
		EtherType: EtherTypeIPv4,
	}
	buf := e.SerializeTo(nil)
	if len(buf) != EthernetLen {
		t.Fatalf("serialized %d bytes, want %d", len(buf), EthernetLen)
	}
	var d Ethernet
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("round trip mismatch: %+v vs %+v", d, e)
	}
	if err := d.DecodeFromBytes(buf[:13]); err == nil {
		t.Fatal("truncated header must fail")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	ip := IPv4{
		TotalLen: 100, ID: 7, TTL: 64, Protocol: ProtoUDP,
		Src: AddrFrom4(10, 0, 0, 1), Dst: AddrFrom4(10, 0, 0, 2),
	}
	buf := ip.SerializeTo(nil)
	if len(buf) != IPv4Len {
		t.Fatalf("serialized %d bytes, want %d", len(buf), IPv4Len)
	}
	var d IPv4
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.TotalLen != ip.TotalLen || d.TTL != 64 {
		t.Fatalf("round trip mismatch: %+v", d)
	}
	// Corrupt one byte: checksum must catch it.
	buf[16] ^= 0x01
	if err := d.DecodeFromBytes(buf); err == nil {
		t.Fatal("corrupted header must fail checksum")
	}
}

func TestIPv4RejectsOptionsAndVersion(t *testing.T) {
	ip := IPv4{TotalLen: 40, TTL: 1, Protocol: ProtoUDP}
	buf := ip.SerializeTo(nil)
	bad := append([]byte(nil), buf...)
	bad[0] = 0x46 // IHL=6 -> options
	if err := new(IPv4).DecodeFromBytes(bad); err == nil {
		t.Fatal("options must be rejected")
	}
	bad[0] = 0x65 // version 6
	if err := new(IPv4).DecodeFromBytes(bad); err == nil {
		t.Fatal("version 6 must be rejected")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 1234, DstPort: Port, Length: UDPLen + 5}
	buf := u.SerializeTo(nil)
	payload := append(buf, 1, 2, 3, 4, 5)
	var d UDP
	if err := d.DecodeFromBytes(payload); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 1234 || d.DstPort != Port || d.Length != UDPLen+5 {
		t.Fatalf("round trip mismatch: %+v", d)
	}
	// Length larger than datagram must fail.
	short := append([]byte(nil), buf...)
	if err := d.DecodeFromBytes(short[:UDPLen]); err == nil {
		t.Fatal("udp length beyond datagram must fail")
	}
	u.Length = 3
	buf = u.SerializeTo(nil)
	if err := d.DecodeFromBytes(buf); err == nil {
		t.Fatal("udp length below header must fail")
	}
}

func sampleHeader() *NetChain {
	h := &NetChain{
		Op:      kv.OpWrite,
		Status:  kv.StatusOK,
		Group:   17,
		Seq:     42,
		Session: 3,
		QueryID: 0xdeadbeef,
		Key:     kv.KeyFromString("foo"),
		Value:   []byte("the-value"),
	}
	h.SetChain([]Addr{AddrFrom4(10, 0, 0, 2), AddrFrom4(10, 0, 0, 3)})
	return h
}

func TestNetChainRoundTrip(t *testing.T) {
	h := sampleHeader()
	buf, err := h.SerializeTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != h.WireLen() {
		t.Fatalf("WireLen=%d but serialized %d", h.WireLen(), len(buf))
	}
	var d NetChain
	if err := d.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if d.Op != h.Op || d.Seq != h.Seq || d.Session != h.Session ||
		d.QueryID != h.QueryID || d.Key != h.Key || d.Group != h.Group {
		t.Fatalf("fixed fields mismatch: %+v", &d)
	}
	if !bytes.Equal(d.Value, h.Value) {
		t.Fatalf("value mismatch: %q", d.Value)
	}
	if len(d.Chain) != 2 || d.Chain[0] != h.Chain[0] || d.Chain[1] != h.Chain[1] {
		t.Fatalf("chain mismatch: %v", d.Chain)
	}
}

func TestNetChainDecodeErrors(t *testing.T) {
	h := sampleHeader()
	buf, _ := h.SerializeTo(nil)

	var d NetChain
	if err := d.DecodeFromBytes(buf[:10]); err == nil {
		t.Fatal("truncated fixed header must fail")
	}
	if err := d.DecodeFromBytes(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated chain list must fail")
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 0
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("bad magic must fail")
	}
	bad = append([]byte(nil), buf...)
	bad[2] = 9
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("bad version must fail")
	}
	bad = append([]byte(nil), buf...)
	bad[3] = 0
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("invalid op must fail")
	}
	bad = append([]byte(nil), buf...)
	bad[5] = MaxChainHops + 1
	if err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("oversized chain count must fail")
	}
}

func TestNetChainPopAndSetChain(t *testing.T) {
	h := &NetChain{}
	hops := []Addr{1, 2, 3}
	if err := h.SetChain(hops); err != nil {
		t.Fatal(err)
	}
	hops[0] = 99 // caller's slice must not alias
	next, ok := h.PopChain()
	if !ok || next != 1 {
		t.Fatalf("PopChain = %v, %v; want 1, true", next, ok)
	}
	if next, ok = h.PopChain(); !ok || next != 2 {
		t.Fatalf("PopChain = %v, %v; want 2, true", next, ok)
	}
	if next, ok = h.PopChain(); !ok || next != 3 {
		t.Fatalf("PopChain = %v, %v; want 3, true", next, ok)
	}
	if _, ok = h.PopChain(); ok {
		t.Fatal("empty chain must report ok=false")
	}
	long := make([]Addr, MaxChainHops+1)
	if err := h.SetChain(long); err == nil {
		t.Fatal("oversized chain must be rejected")
	}
}

func TestNetChainClone(t *testing.T) {
	h := sampleHeader()
	c := h.Clone()
	c.Value[0] = 'X'
	c.Chain[0] = 0
	if h.Value[0] == 'X' || h.Chain[0] == 0 {
		t.Fatal("Clone must not alias value or chain")
	}
}

func TestNetChainRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		h := &NetChain{
			Op:      kv.Op(1 + rng.Intn(7)),
			Status:  kv.Status(rng.Intn(6)),
			Group:   uint16(rng.Uint32()),
			Seq:     rng.Uint64(),
			Session: rng.Uint32(),
			QueryID: rng.Uint64(),
		}
		rng.Read(h.Key[:])
		if n := rng.Intn(kv.MaxValueSize + 1); n > 0 {
			h.Value = make([]byte, n)
			rng.Read(h.Value)
		}
		hops := make([]Addr, rng.Intn(MaxChainHops+1))
		for j := range hops {
			hops[j] = Addr(rng.Uint32())
		}
		h.SetChain(hops)

		buf, err := h.SerializeTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		var d NetChain
		if err := d.DecodeFromBytes(buf); err != nil {
			t.Fatalf("iter %d: %v (header %v)", i, err, h)
		}
		if d.Op != h.Op || d.Status != h.Status || d.Seq != h.Seq ||
			d.Group != h.Group ||
			d.Session != h.Session || d.QueryID != h.QueryID || d.Key != h.Key ||
			!bytes.Equal(d.Value, h.Value) || len(d.Chain) != len(h.Chain) {
			t.Fatalf("iter %d: round trip mismatch", i)
		}
		for j := range d.Chain {
			if d.Chain[j] != h.Chain[j] {
				t.Fatalf("iter %d: chain[%d] mismatch", i, j)
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	nc := sampleHeader()
	f := NewQuery(AddrFrom4(10, 1, 0, 1), AddrFrom4(10, 0, 0, 1), 5555, nc)
	buf, err := f.Serialize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != f.WireLen() {
		t.Fatalf("WireLen=%d but serialized %d bytes", f.WireLen(), len(buf))
	}
	var d Frame
	if err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if d.IP.Src != f.IP.Src || d.IP.Dst != f.IP.Dst {
		t.Fatalf("IP mismatch: %+v", d.IP)
	}
	if d.UDP.SrcPort != 5555 || d.UDP.DstPort != Port {
		t.Fatalf("UDP mismatch: %+v", d.UDP)
	}
	if d.NC.Key != nc.Key || !bytes.Equal(d.NC.Value, nc.Value) {
		t.Fatal("NetChain payload mismatch")
	}
}

func TestFrameToReply(t *testing.T) {
	nc := sampleHeader()
	client := AddrFrom4(10, 1, 0, 1)
	tail := AddrFrom4(10, 0, 0, 3)
	f := NewQuery(client, tail, 7777, nc)
	f.ToReply(kv.StatusOK)
	if f.IP.Dst != client || f.IP.Src != tail {
		t.Fatalf("reply addressing wrong: %+v", f.IP)
	}
	if f.UDP.DstPort != 7777 || f.UDP.SrcPort != Port {
		t.Fatalf("reply ports wrong: %+v", f.UDP)
	}
	if f.NC.Op != kv.OpReply || len(f.NC.Chain) != 0 {
		t.Fatalf("reply header wrong: %v", &f.NC)
	}
}

func TestFrameDecodeRejectsForeign(t *testing.T) {
	nc := sampleHeader()
	f := NewQuery(1, 2, 9, nc)
	buf, _ := f.Serialize(nil)

	var d Frame
	eth := append([]byte(nil), buf...)
	eth[12], eth[13] = 0x86, 0xdd // IPv6 ethertype
	if err := d.Decode(eth); err == nil {
		t.Fatal("non-IPv4 ethertype must fail")
	}

	proto := append([]byte(nil), buf...)
	proto[EthernetLen+9] = 6 // TCP
	// fix IPv4 checksum after mutation
	var ip IPv4
	ip.TotalLen = f.IP.TotalLen
	ip.TTL = f.IP.TTL
	ip.Protocol = 6
	ip.Src, ip.Dst = f.IP.Src, f.IP.Dst
	fixed := ip.SerializeTo(nil)
	copy(proto[EthernetLen:], fixed)
	if err := d.Decode(proto); err == nil {
		t.Fatal("non-UDP protocol must fail")
	}
}

func TestFrameClone(t *testing.T) {
	nc := sampleHeader()
	f := NewQuery(1, 2, 9, nc)
	c := f.Clone()
	c.NC.Value[0] = 'Z'
	if f.NC.Value[0] == 'Z' {
		t.Fatal("Clone must not alias NC value")
	}
}

func TestNewQueryCopiesChain(t *testing.T) {
	nc := sampleHeader()
	f := NewQuery(1, 2, 9, nc)
	nc.Chain[0] = 0xffffffff
	if f.NC.Chain[0] == 0xffffffff {
		t.Fatal("NewQuery must copy the chain list")
	}
}

func BenchmarkNetChainSerialize(b *testing.B) {
	h := sampleHeader()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = h.SerializeTo(buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetChainDecode(b *testing.B) {
	h := sampleHeader()
	buf, _ := h.SerializeTo(nil)
	var d NetChain
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.DecodeFromBytes(buf); err != nil {
			b.Fatal(err)
		}
	}
}
