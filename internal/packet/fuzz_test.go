package packet

import (
	"bytes"
	"testing"

	"netchain/internal/kv"
)

// seedFrame builds a representative valid frame for the fuzz corpora.
func seedFrame(op kv.Op, val []byte, hops ...Addr) []byte {
	nc := &NetChain{Op: op, Key: kv.KeyFromString("seed"), QueryID: 42, Value: val}
	if err := nc.SetChain(hops); err != nil {
		panic(err)
	}
	f := NewQuery(AddrFrom4(10, 1, 0, 1), AddrFrom4(10, 0, 0, 1), 4000, nc)
	buf, err := f.Serialize(nil)
	if err != nil {
		panic(err)
	}
	return buf
}

// FuzzDecodeFrame feeds arbitrary bytes to the full-frame decoder (and the
// batched NextFrame walker): it must reject garbage with errors, never
// panic, and anything it accepts must survive a serialize→decode round
// trip.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(seedFrame(kv.OpWrite, []byte("hello"), AddrFrom4(10, 0, 0, 2), AddrFrom4(10, 0, 0, 3)))
	f.Add(seedFrame(kv.OpRead, nil))
	f.Add(seedFrame(kv.OpCAS, make([]byte, 16), AddrFrom4(10, 0, 0, 2)))
	// A batch of two frames back to back.
	f.Add(append(seedFrame(kv.OpRead, nil), seedFrame(kv.OpDelete, nil)...))
	// Truncations and bit flips of a valid frame.
	whole := seedFrame(kv.OpWrite, []byte("x"), AddrFrom4(10, 0, 0, 2))
	for cut := 0; cut < len(whole); cut += 7 {
		f.Add(whole[:cut])
	}
	for i := 0; i < len(whole); i += 5 {
		flip := append([]byte(nil), whole...)
		flip[i] ^= 0x80
		f.Add(flip)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.Decode(data); err == nil {
			// Whatever decoded must re-encode and decode identically.
			out, err := fr.Serialize(nil)
			if err != nil {
				t.Fatalf("accepted frame fails to serialize: %v", err)
			}
			var back Frame
			if err := back.Decode(out); err != nil {
				t.Fatalf("re-encoded frame fails to decode: %v", err)
			}
			if back.NC.String() != fr.NC.String() {
				t.Fatalf("round trip drifted: %v != %v", &back.NC, &fr.NC)
			}
		}
		// The batch walker must terminate and never panic either.
		rest := data
		for i := 0; i < 64 && len(rest) > 0; i++ {
			var bf Frame
			next, err := NextFrame(&bf, rest)
			if err != nil {
				break
			}
			if len(next) >= len(rest) {
				t.Fatalf("NextFrame did not consume input: %d -> %d", len(rest), len(next))
			}
			rest = next
		}
	})
}

// FuzzParseAddr covers the address parser the CLI flags feed: arbitrary
// text must produce an address or an error, never a panic (MustParseAddr,
// the panicking variant, is reserved for tests and static tables — nothing
// in the binaries calls it).
func FuzzParseAddr(f *testing.F) {
	f.Add("10.0.0.1")
	f.Add("256.1.2.3")
	f.Add("::1")
	f.Add("10.0.0.1:9000")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		if err == nil {
			// Accepted addresses round-trip through their text form.
			back, err := ParseAddr(a.String())
			if err != nil || back != a {
				t.Fatalf("addr %q round trip: %v %v", s, back, err)
			}
		}
	})
}

// FuzzRoundTrip drives the encoder from arbitrary header fields through a
// pooled frame and requires a bit-exact wire round trip — the contract the
// zero-allocation transport hot path depends on.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(kv.OpWrite), uint8(0), uint16(7), uint64(3), uint32(1), uint64(99),
		[]byte("key-bytes"), []byte("value"), uint8(2))
	f.Add(uint8(kv.OpRead), uint8(1), uint16(0), uint64(0), uint32(0), uint64(1),
		[]byte(""), []byte(nil), uint8(0))
	f.Add(uint8(kv.OpCAS), uint8(2), uint16(65535), uint64(1<<60), uint32(1<<30), uint64(1<<50),
		[]byte("0123456789abcdef"), bytes.Repeat([]byte{0xee}, 128), uint8(16))

	f.Fuzz(func(t *testing.T, op, status uint8, group uint16, seq uint64, session uint32,
		qid uint64, keyBytes, value []byte, chainLen uint8) {
		if !kv.Op(op).Valid() || kv.Op(op) == kv.OpReply {
			return // replies carry no chain; covered by FuzzDecodeFrame
		}
		if len(value) > kv.MaxValueSize {
			value = value[:kv.MaxValueSize]
		}
		hops := make([]Addr, int(chainLen)%(MaxChainHops+1))
		for i := range hops {
			hops[i] = AddrFrom4(10, 0, byte(i), byte(i+1))
		}
		var key kv.Key
		copy(key[:], keyBytes)

		nc := &NetChain{
			Op: kv.Op(op), Status: kv.Status(status), Group: group,
			Seq: seq, Session: session, QueryID: qid, Key: key, Value: value,
		}
		if err := nc.SetChain(hops); err != nil {
			t.Fatal(err)
		}

		// Encode through a pooled frame and a pooled buffer, exactly like
		// the transport hot path.
		pf := GetFrame()
		NewQueryInto(pf, AddrFrom4(10, 1, 0, 9), AddrFrom4(10, 0, 0, 1), 5001, nc)
		bp := GetBuf()
		wire, err := pf.Serialize((*bp)[:0])
		if err != nil {
			t.Fatal(err)
		}
		*bp = wire

		var got Frame
		if err := got.Decode(wire); err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if got.NC.Op != nc.Op || got.NC.Status != nc.Status || got.NC.Group != group ||
			got.NC.Seq != seq || got.NC.Session != session || got.NC.QueryID != qid ||
			got.NC.Key != key {
			t.Fatalf("header drifted: %v != %v", &got.NC, nc)
		}
		if !bytes.Equal(got.NC.Value, value) && !(len(got.NC.Value) == 0 && len(value) == 0) {
			t.Fatalf("value drifted: %x != %x", got.NC.Value, value)
		}
		if len(got.NC.Chain) != len(hops) {
			t.Fatalf("chain length drifted: %d != %d", len(got.NC.Chain), len(hops))
		}
		for i := range hops {
			if got.NC.Chain[i] != hops[i] {
				t.Fatalf("chain[%d] drifted: %v != %v", i, got.NC.Chain[i], hops[i])
			}
		}
		// Bit-exact re-encode from the decoded form.
		wire2, err := got.Serialize(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("wire images differ:\n%x\n%x", wire, wire2)
		}
		// Recycle the pooled objects; a later Get must see zeroed state.
		PutFrame(pf)
		PutBuf(bp)
		clean := GetFrame()
		if clean.NC.Op != 0 || len(clean.NC.Chain) != 0 || clean.IP.Dst != 0 {
			t.Fatalf("pooled frame not reset: %+v", clean)
		}
		PutFrame(clean)
	})
}

// FuzzDecodeBatch covers the batched-datagram decoder the transports run
// on every received datagram: for arbitrary bytes it must never panic,
// must deliver exactly the frames that precede any corruption, and its
// count must match the number of callback invocations. Seeds include
// multi-frame datagrams with partially-truncated trailing frames — the
// torn-batch case whose tail used to be dropped without accounting.
func FuzzDecodeBatch(f *testing.F) {
	one := seedFrame(kv.OpRead, nil)
	two := append(seedFrame(kv.OpWrite, []byte("hello"), AddrFrom4(10, 0, 0, 2)),
		seedFrame(kv.OpDelete, nil)...)
	three := append(append([]byte(nil), two...), seedFrame(kv.OpRead, nil)...)
	f.Add(one)
	f.Add(two)
	f.Add(three)
	// Good frames followed by a partial trailing frame, cut at assorted
	// depths into the last frame.
	for cut := 1; cut < len(one); cut += 9 {
		f.Add(append(append([]byte(nil), two...), one[:cut]...))
	}
	// Mid-batch corruption: flip bits inside the second frame of three.
	for i := len(one); i < len(two); i += 11 {
		flip := append([]byte(nil), three...)
		flip[i] ^= 0x80
		f.Add(flip)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		calls := 0
		n, err := DecodeBatch(&fr, data, func(g *Frame) {
			if g != &fr {
				t.Fatal("callback frame is not the caller's frame")
			}
			calls++
		})
		if n != calls {
			t.Fatalf("DecodeBatch reported %d frames but delivered %d", n, calls)
		}
		if err == nil && len(data) > 0 && n == 0 {
			t.Fatalf("no frames and no error from %d bytes", len(data))
		}
		// Reference walk: DecodeBatch must agree with NextFrame exactly.
		refN := 0
		rest := data
		for len(rest) > 0 {
			var rf Frame
			next, rerr := NextFrame(&rf, rest)
			if rerr != nil {
				if err == nil {
					t.Fatalf("NextFrame errs (%v) where DecodeBatch did not", rerr)
				}
				break
			}
			refN++
			rest = next
		}
		if refN != n {
			t.Fatalf("DecodeBatch delivered %d frames, reference walk %d", n, refN)
		}
	})
}
