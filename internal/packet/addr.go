// Package packet implements the NetChain wire formats of Fig. 2(b):
// Ethernet / IPv4 / UDP carrier layers plus the custom NetChain header
// (OP, SEQ, SESSION, KEY, VALUE, SC and the chain IP list).
//
// The codec follows the gopacket DecodingLayer discipline: DecodeFromBytes
// parses into a preallocated struct without retaining the input slice for
// header fields, and SerializeTo appends into a caller-provided buffer, so
// steady-state encode/decode performs no allocation.
package packet

import (
	"fmt"
	"net/netip"
)

// Addr is an IPv4 address in host integer form. Switches, hosts and the
// controller are all identified by an Addr; the underlay routes on it.
type Addr uint32

// AddrFrom4 builds an Addr from four octets a.b.c.d.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad text into an Addr.
func ParseAddr(s string) (Addr, error) {
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("packet: parse addr %q: %w", s, err)
	}
	if !ip.Is4() {
		return 0, fmt.Errorf("packet: addr %q is not IPv4", s)
	}
	b := ip.As4()
	return AddrFrom4(b[0], b[1], b[2], b[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

func (a Addr) String() string {
	o := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o[0], o[1], o[2], o[3])
}

// IsZero reports whether a is the unspecified address.
func (a Addr) IsZero() bool { return a == 0 }

// IsMulticast reports whether a is an IPv4 class-D (multicast) address —
// the watch relay's fan-out groups live in this range, and the simulator
// replicates frames addressed to one toward every joined member.
func (a Addr) IsMulticast() bool { return byte(a>>24)&0xf0 == 0xe0 }

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}
