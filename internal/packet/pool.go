package packet

import "sync"

// Pools backing the hot encode/decode path: transports churn through one
// frame and one wire buffer per query, so both are recycled here instead
// of being reallocated per packet. Frames returned by GetFrame are fully
// zeroed; buffers returned by GetBuf have length zero and retain their
// capacity across uses.

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a zeroed frame from the pool.
func GetFrame() *Frame { return framePool.Get().(*Frame) }

// PutFrame resets f and returns it to the pool. The caller must not keep
// any reference to f, its NC.Value, or its NC.Chain afterwards.
func PutFrame(f *Frame) {
	f.Reset()
	framePool.Put(f)
}

// wireBufCap seeds new buffers large enough for a full-chain query with a
// typical (≤128 B line-rate) value, so steady state never grows them.
const wireBufCap = 512

// maxPooledBufCap bounds what PutBuf keeps: an oversized value (up to
// 64 KB) would otherwise pin its buffer in the pool forever.
const maxPooledBufCap = 64 * 1024

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, wireBufCap)
		return &b
	},
}

// GetBuf returns a length-zero wire buffer. Serialize into (*b)[:0] and
// store the result back through *b before PutBuf so capacity growth is
// retained.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf recycles a buffer obtained from GetBuf.
func PutBuf(b *[]byte) {
	if cap(*b) > maxPooledBufCap {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
