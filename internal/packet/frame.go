package packet

import (
	"fmt"

	"netchain/internal/kv"
)

// Frame is a fully parsed NetChain datagram: Ethernet + IPv4 + UDP +
// NetChain. The real transport serializes frames to bytes; the simulator
// passes *Frame values directly (both run the same dataplane code).
type Frame struct {
	Eth Ethernet
	IP  IPv4
	UDP UDP
	NC  NetChain

	// valBuf is the frame's reusable value storage: reply values copied
	// out of switch registers and cloned query values land here instead
	// of fresh heap allocations. It survives Reset, so pooled frames stop
	// allocating once warmed to the workload's value size.
	valBuf []byte

	// traceBuf is the frame's reusable storage for in-band telemetry hop
	// records (see traceext.go). Like valBuf it survives Reset. traceOwned
	// tracks whether NC.Trace points into traceBuf (appendable in place)
	// or aliases a decode buffer (copy on first append).
	traceBuf   []byte
	traceOwned bool

	// Non-wire telemetry context a transport stamps at ingress so the hop
	// record appended after processing can attribute queueing: receive
	// timestamp, pending depth at arrival, and the worker shard. Zero on
	// untraced frames and on substrates that don't stamp them.
	TraceIngress int64
	TraceQueue   uint16
	TraceShard   uint8
}

// ValueScratch exposes the frame's reusable value buffer for zero-copy
// fills (the dataplane's seqlock read copies straight into it). The
// caller points NC.Value at the returned storage; the bytes are valid for
// the lifetime of the frame.
func (f *Frame) ValueScratch() *[]byte { return &f.valBuf }

// setValue copies v into the frame's value buffer and returns the stored
// slice (nil for empty v, matching wire semantics).
func (f *Frame) setValue(v []byte) []byte {
	if len(v) == 0 {
		return nil
	}
	if cap(f.valBuf) < len(v) {
		f.valBuf = make([]byte, len(v))
	}
	b := f.valBuf[:len(v)]
	copy(b, v)
	return b
}

// NewQuery builds a frame for a client query addressed to first, carrying
// the remaining chain hops.
func NewQuery(src, first Addr, srcPort uint16, nc *NetChain) *Frame {
	return NewQueryInto(&Frame{}, src, first, srcPort, nc)
}

// NewQueryInto is NewQuery writing into caller-provided storage (usually a
// pooled frame from GetFrame), keeping the encode path allocation-free.
func NewQueryInto(f *Frame, src, first Addr, srcPort uint16, nc *NetChain) *Frame {
	f.NC = *nc
	n := copy(f.NC.chainBuf[:], nc.Chain)
	f.NC.Chain = f.NC.chainBuf[:n]
	f.traceOwned = false // NC.Trace (if any) aliases the caller's header
	f.SetAddrs(src, first, srcPort, Port)
	f.fixLengths()
	return f
}

// SetAddrs fills the IP/UDP addressing fields.
func (f *Frame) SetAddrs(src, dst Addr, srcPort, dstPort uint16) {
	f.IP.Src, f.IP.Dst = src, dst
	f.UDP.SrcPort, f.UDP.DstPort = srcPort, dstPort
	f.IP.TTL = 64
	f.IP.Protocol = ProtoUDP
	f.Eth.EtherType = EtherTypeIPv4
}

// Retarget points the frame at a new IP destination (the next chain hop).
func (f *Frame) Retarget(dst Addr) { f.IP.Dst = dst }

// ToReply flips the frame into a reply to the original client: swaps
// src/dst addresses and ports, marks the op, and clears the chain list
// (matching Fig. 4's SC=0 reply packets).
func (f *Frame) ToReply(status kv.Status) {
	f.IP.Src, f.IP.Dst = f.IP.Dst, f.IP.Src
	f.UDP.SrcPort, f.UDP.DstPort = f.UDP.DstPort, f.UDP.SrcPort
	f.NC.Op = kv.OpReply
	f.NC.Status = status
	f.NC.Chain = f.NC.chainBuf[:0]
	f.fixLengths()
}

// Finalize recomputes the carrier length fields after direct NC edits,
// for frames assembled outside the NewQuery path (event/watch frames with
// non-standard port pairs).
func (f *Frame) Finalize() { f.fixLengths() }

// fixLengths recomputes the IP and UDP length fields from the payload.
func (f *Frame) fixLengths() {
	nclen := f.NC.WireLen()
	f.UDP.Length = uint16(UDPLen + nclen)
	f.IP.TotalLen = uint16(IPv4Len + UDPLen + nclen)
}

// WireLen returns the full on-wire frame size in bytes, used by the
// simulator for link serialization delay.
func (f *Frame) WireLen() int {
	return EthernetLen + IPv4Len + UDPLen + f.NC.WireLen()
}

// Serialize appends the complete frame to buf and returns it.
func (f *Frame) Serialize(buf []byte) ([]byte, error) {
	f.fixLengths()
	buf = f.Eth.SerializeTo(buf)
	buf = f.IP.SerializeTo(buf)
	buf = f.UDP.SerializeTo(buf)
	return f.NC.SerializeTo(buf)
}

// Decode parses a complete frame from data. The NC.Value field aliases
// data.
func (f *Frame) Decode(data []byte) error {
	if err := f.Eth.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.Eth.EtherType != EtherTypeIPv4 {
		return fmt.Errorf("packet: ethertype %#04x is not IPv4", f.Eth.EtherType)
	}
	data = data[EthernetLen:]
	if err := f.IP.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.IP.Protocol != ProtoUDP {
		return fmt.Errorf("packet: protocol %d is not UDP", f.IP.Protocol)
	}
	data = data[IPv4Len:]
	if err := f.UDP.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.UDP.DstPort != Port && f.UDP.SrcPort != Port {
		return fmt.Errorf("packet: neither UDP port is the NetChain port")
	}
	f.traceOwned = false // a decoded NC.Trace aliases data
	return f.NC.DecodeFromBytes(data[UDPLen:f.UDP.Length])
}

// NextFrame decodes the first frame in data and returns the bytes that
// follow it. Transports concatenate whole frames back-to-back inside one
// datagram (DPDK-style burst batching); the IP total-length field
// delimits them, and a lone frame is simply a batch of one.
func NextFrame(f *Frame, data []byte) (rest []byte, err error) {
	if err := f.Decode(data); err != nil {
		return nil, err
	}
	n := EthernetLen + int(f.IP.TotalLen)
	if n < EthernetLen+IPv4Len+UDPLen || n > len(data) {
		return nil, fmt.Errorf("packet: frame length %d outside datagram of %d bytes", n, len(data))
	}
	return data[n:], nil
}

// DecodeBatch parses the back-to-back frames of one datagram, invoking fn
// for each decoded frame. f is reused across calls and aliases data, so fn
// must finish with (or detach) the frame before returning. It returns the
// number of frames delivered and, when a torn or corrupt frame cut the
// batch short, the decode error: frame boundaries are only discoverable by
// parsing, so the bytes after the bad frame are undecodable — but every
// frame before the corruption has already been delivered, and the caller
// can account for the loss instead of silently discarding the tail.
func DecodeBatch(f *Frame, data []byte, fn func(*Frame)) (int, error) {
	n := 0
	for len(data) > 0 {
		rest, err := NextFrame(f, data)
		if err != nil {
			return n, err
		}
		data = rest
		fn(f)
		n++
	}
	return n, nil
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	c := &Frame{}
	f.CloneTo(c)
	return c
}

// CloneTo deep-copies f into dst (usually a pooled frame from GetFrame),
// detaching Value and Chain from any buffers f aliases.
func (f *Frame) CloneTo(dst *Frame) {
	dst.Eth, dst.IP, dst.UDP = f.Eth, f.IP, f.UDP
	vb, tb := dst.valBuf, dst.traceBuf // keep dst's grown-once storage
	dst.NC = f.NC
	dst.valBuf, dst.traceBuf = vb, tb
	if f.NC.Value != nil {
		dst.NC.Value = dst.setValue(f.NC.Value)
	}
	dst.NC.Trace = nil
	dst.traceOwned = false
	if f.NC.Traced {
		if cap(dst.traceBuf) < len(f.NC.Trace) {
			dst.traceBuf = make([]byte, len(f.NC.Trace), MaxTraceHops*TraceRecLen)
		}
		dst.traceBuf = dst.traceBuf[:len(f.NC.Trace)]
		copy(dst.traceBuf, f.NC.Trace)
		dst.NC.Trace = dst.traceBuf
		dst.traceOwned = true
	}
	n := copy(dst.NC.chainBuf[:], f.NC.Chain)
	dst.NC.Chain = dst.NC.chainBuf[:n]
	dst.TraceIngress, dst.TraceQueue, dst.TraceShard = f.TraceIngress, f.TraceQueue, f.TraceShard
}

// Reset zeroes the frame for reuse, retaining the value buffer's capacity
// so pooled frames stay allocation-free in steady state.
func (f *Frame) Reset() {
	vb, tb := f.valBuf, f.traceBuf
	*f = Frame{}
	if vb != nil {
		f.valBuf = vb[:0]
	}
	if tb != nil {
		f.traceBuf = tb[:0]
	}
}
