package packet

import (
	"fmt"

	"netchain/internal/kv"
)

// Frame is a fully parsed NetChain datagram: Ethernet + IPv4 + UDP +
// NetChain. The real transport serializes frames to bytes; the simulator
// passes *Frame values directly (both run the same dataplane code).
type Frame struct {
	Eth Ethernet
	IP  IPv4
	UDP UDP
	NC  NetChain
}

// NewQuery builds a frame for a client query addressed to first, carrying
// the remaining chain hops.
func NewQuery(src, first Addr, srcPort uint16, nc *NetChain) *Frame {
	f := &Frame{NC: *nc}
	n := copy(f.NC.chainBuf[:], nc.Chain)
	f.NC.Chain = f.NC.chainBuf[:n]
	f.SetAddrs(src, first, srcPort, Port)
	f.fixLengths()
	return f
}

// SetAddrs fills the IP/UDP addressing fields.
func (f *Frame) SetAddrs(src, dst Addr, srcPort, dstPort uint16) {
	f.IP.Src, f.IP.Dst = src, dst
	f.UDP.SrcPort, f.UDP.DstPort = srcPort, dstPort
	f.IP.TTL = 64
	f.IP.Protocol = ProtoUDP
	f.Eth.EtherType = EtherTypeIPv4
}

// Retarget points the frame at a new IP destination (the next chain hop).
func (f *Frame) Retarget(dst Addr) { f.IP.Dst = dst }

// ToReply flips the frame into a reply to the original client: swaps
// src/dst addresses and ports, marks the op, and clears the chain list
// (matching Fig. 4's SC=0 reply packets).
func (f *Frame) ToReply(status kv.Status) {
	f.IP.Src, f.IP.Dst = f.IP.Dst, f.IP.Src
	f.UDP.SrcPort, f.UDP.DstPort = f.UDP.DstPort, f.UDP.SrcPort
	f.NC.Op = kv.OpReply
	f.NC.Status = status
	f.NC.Chain = f.NC.chainBuf[:0]
	f.fixLengths()
}

// fixLengths recomputes the IP and UDP length fields from the payload.
func (f *Frame) fixLengths() {
	nclen := f.NC.WireLen()
	f.UDP.Length = uint16(UDPLen + nclen)
	f.IP.TotalLen = uint16(IPv4Len + UDPLen + nclen)
}

// WireLen returns the full on-wire frame size in bytes, used by the
// simulator for link serialization delay.
func (f *Frame) WireLen() int {
	return EthernetLen + IPv4Len + UDPLen + f.NC.WireLen()
}

// Serialize appends the complete frame to buf and returns it.
func (f *Frame) Serialize(buf []byte) ([]byte, error) {
	f.fixLengths()
	buf = f.Eth.SerializeTo(buf)
	buf = f.IP.SerializeTo(buf)
	buf = f.UDP.SerializeTo(buf)
	return f.NC.SerializeTo(buf)
}

// Decode parses a complete frame from data. The NC.Value field aliases
// data.
func (f *Frame) Decode(data []byte) error {
	if err := f.Eth.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.Eth.EtherType != EtherTypeIPv4 {
		return fmt.Errorf("packet: ethertype %#04x is not IPv4", f.Eth.EtherType)
	}
	data = data[EthernetLen:]
	if err := f.IP.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.IP.Protocol != ProtoUDP {
		return fmt.Errorf("packet: protocol %d is not UDP", f.IP.Protocol)
	}
	data = data[IPv4Len:]
	if err := f.UDP.DecodeFromBytes(data); err != nil {
		return err
	}
	if f.UDP.DstPort != Port && f.UDP.SrcPort != Port {
		return fmt.Errorf("packet: neither UDP port is the NetChain port")
	}
	return f.NC.DecodeFromBytes(data[UDPLen:f.UDP.Length])
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	c := &Frame{}
	*c = *f
	c.NC = *f.NC.Clone()
	return c
}
