package packet

import (
	"encoding/binary"
	"fmt"

	"netchain/internal/kv"
)

// Port is the reserved UDP port that invokes NetChain processing in a
// switch (§3: "the processing logic of NetChain is invoked by a reserved
// UDP port"). 0x4e43 spells "NC".
const Port = 0x4e43

// Magic marks a NetChain header; it doubles as a sanity check when a
// datagram arrives on the reserved port by accident.
const Magic = 0x4e43

// VersionWire is the header format version emitted by this implementation.
const VersionWire = 1

// MaxChainHops bounds the chain IP list length (a chain of f+1 replicas
// plus slack for routing; Tofino parsers bound header stacks similarly).
const MaxChainHops = 16

// netchainFixedLen is the byte length of the fixed portion of the header:
// magic(2) version(1) op(1) status(1) sc(1) vlen(2) group(2) seq(8)
// session(4) queryID(8) key(16).
const netchainFixedLen = 46

// NetChain is the custom query header of Fig. 2(b). The chain IP list holds
// the hops *after* the current IP destination: a write to chain [S0,S1,S2]
// leaves the client with dst=S0 and Chain=[S1,S2]; each switch pops the
// next hop into the IP destination. Reads carry the reverse list and go
// straight to the tail; the list is consumed only by failover rules (§5.1).
type NetChain struct {
	Op      kv.Op
	Status  kv.Status
	Group   uint16 // virtual group of the key; matched by failover rules
	Seq     uint64
	Session uint32
	QueryID uint64 // client-chosen id matching replies to retries
	Key     kv.Key
	Value   []byte // decoded views alias the input buffer; copy to retain
	Chain   []Addr // remaining hops, nearest first

	// In-band telemetry extension (see traceext.go). Traced mirrors the
	// TraceFlag wire bit; Trace holds the raw hop records (a multiple of
	// TraceRecLen bytes). Decoded views alias the input buffer; hops are
	// appended via Frame.AppendTraceHop, which copies on first append.
	Traced bool
	Trace  []byte

	chainBuf [MaxChainHops]Addr // backing storage to keep decode alloc-free
}

// Version returns the write-ordering version pair carried by the packet.
func (h *NetChain) Version() kv.Version {
	return kv.Version{Session: h.Session, Seq: h.Seq}
}

// SetVersion stamps the write-ordering version pair onto the packet.
func (h *NetChain) SetVersion(v kv.Version) {
	h.Session, h.Seq = v.Session, v.Seq
}

// WireLen returns the serialized size of the header in bytes.
func (h *NetChain) WireLen() int {
	n := netchainFixedLen + len(h.Value) + 4*len(h.Chain)
	if h.Traced {
		n += 1 + len(h.Trace)
	}
	return n
}

// PopChain removes and returns the first remaining hop. ok is false when
// the list is empty (the current destination was the final hop).
func (h *NetChain) PopChain() (next Addr, ok bool) {
	if len(h.Chain) == 0 {
		return 0, false
	}
	next = h.Chain[0]
	h.Chain = h.Chain[1:]
	return next, true
}

// SetChain replaces the remaining-hop list. The hops are copied into the
// header's own storage so callers may reuse their slice.
func (h *NetChain) SetChain(hops []Addr) error {
	if len(hops) > MaxChainHops {
		return fmt.Errorf("packet: chain of %d hops exceeds max %d", len(hops), MaxChainHops)
	}
	n := copy(h.chainBuf[:], hops)
	h.Chain = h.chainBuf[:n]
	return nil
}

// Reset clears the header for reuse.
func (h *NetChain) Reset() {
	*h = NetChain{}
}

// DecodeFromBytes parses the header from data. The Value field aliases
// data; the chain list is copied into internal storage.
func (h *NetChain) DecodeFromBytes(data []byte) error {
	if len(data) < netchainFixedLen {
		return fmt.Errorf("packet: netchain header truncated: %d bytes", len(data))
	}
	if m := binary.BigEndian.Uint16(data[0:2]); m != Magic {
		return fmt.Errorf("packet: bad netchain magic %#04x", m)
	}
	if v := data[2]; v != VersionWire {
		return fmt.Errorf("packet: unsupported netchain version %d", v)
	}
	h.Op = kv.Op(data[3])
	if !h.Op.Valid() {
		return fmt.Errorf("packet: invalid op %d", data[3])
	}
	h.Status = kv.Status(data[4])
	scByte := data[5]
	h.Traced = scByte&TraceFlag != 0
	sc := int(scByte &^ TraceFlag)
	vlen := int(binary.BigEndian.Uint16(data[6:8]))
	h.Group = binary.BigEndian.Uint16(data[8:10])
	h.Seq = binary.BigEndian.Uint64(data[10:18])
	h.Session = binary.BigEndian.Uint32(data[18:22])
	h.QueryID = binary.BigEndian.Uint64(data[22:30])
	copy(h.Key[:], data[30:46])
	if sc > MaxChainHops {
		return fmt.Errorf("packet: chain count %d exceeds max %d", sc, MaxChainHops)
	}
	need := netchainFixedLen + vlen + 4*sc
	if len(data) < need {
		return fmt.Errorf("packet: netchain payload truncated: have %d, need %d", len(data), need)
	}
	h.Value = data[netchainFixedLen : netchainFixedLen+vlen]
	if vlen == 0 {
		h.Value = nil
	}
	off := netchainFixedLen + vlen
	for i := 0; i < sc; i++ {
		h.chainBuf[i] = Addr(binary.BigEndian.Uint32(data[off+4*i:]))
	}
	h.Chain = h.chainBuf[:sc]
	h.Trace = nil
	if h.Traced {
		if len(data) < need+1 {
			return fmt.Errorf("packet: trace extension truncated: missing hop count")
		}
		tn := int(data[need])
		if tn > MaxTraceHops {
			return fmt.Errorf("packet: trace hop count %d exceeds max %d", tn, MaxTraceHops)
		}
		tlen := tn * TraceRecLen
		if len(data) < need+1+tlen {
			return fmt.Errorf("packet: trace records truncated: have %d, need %d", len(data)-need-1, tlen)
		}
		if tlen > 0 {
			h.Trace = data[need+1 : need+1+tlen]
		}
	}
	return nil
}

// SerializeTo appends the wire form of the header to buf.
func (h *NetChain) SerializeTo(buf []byte) ([]byte, error) {
	if len(h.Chain) > MaxChainHops {
		return nil, fmt.Errorf("packet: chain of %d hops exceeds max %d", len(h.Chain), MaxChainHops)
	}
	if len(h.Value) > 0xffff {
		return nil, fmt.Errorf("packet: value of %d bytes exceeds field", len(h.Value))
	}
	scByte := byte(len(h.Chain))
	if h.Traced {
		if len(h.Trace)%TraceRecLen != 0 {
			return nil, fmt.Errorf("packet: trace length %d not a whole number of records", len(h.Trace))
		}
		if len(h.Trace)/TraceRecLen > MaxTraceHops {
			return nil, fmt.Errorf("packet: %d trace hops exceeds max %d", len(h.Trace)/TraceRecLen, MaxTraceHops)
		}
		scByte |= TraceFlag
	}
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, VersionWire, byte(h.Op), byte(h.Status), scByte)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Value)))
	buf = binary.BigEndian.AppendUint16(buf, h.Group)
	buf = binary.BigEndian.AppendUint64(buf, h.Seq)
	buf = binary.BigEndian.AppendUint32(buf, h.Session)
	buf = binary.BigEndian.AppendUint64(buf, h.QueryID)
	buf = append(buf, h.Key[:]...)
	buf = append(buf, h.Value...)
	for _, hop := range h.Chain {
		buf = binary.BigEndian.AppendUint32(buf, uint32(hop))
	}
	if h.Traced {
		buf = append(buf, byte(len(h.Trace)/TraceRecLen))
		buf = append(buf, h.Trace...)
	}
	return buf, nil
}

// Clone returns a deep copy of the header, detaching Value and Chain from
// any shared buffers. Simulated switches clone before mutating in place.
func (h *NetChain) Clone() *NetChain {
	c := &NetChain{}
	*c = *h
	if h.Value != nil {
		c.Value = append([]byte(nil), h.Value...)
	}
	if h.Trace != nil {
		c.Trace = append([]byte(nil), h.Trace...)
	}
	n := copy(c.chainBuf[:], h.Chain)
	c.Chain = c.chainBuf[:n]
	return c
}

func (h *NetChain) String() string {
	return fmt.Sprintf("netchain{%s %s key=%s v=%dB seq=%d.%d chain=%v q=%d}",
		h.Op, h.Status, h.Key, len(h.Value), h.Session, h.Seq, h.Chain, h.QueryID)
}
