package packet

import (
	"encoding/binary"
	"fmt"
)

// In-band telemetry extension (INT-style, §SIGCOMM INT spec in spirit):
// when a query is sampled for tracing, the client sets TraceFlag in the
// chain-count byte and every hop that touches the frame appends a fixed
// 24-byte record in place — per-hop visibility at zero extra RTTs. The
// extension rides after the chain hop list:
//
//	[hopCount:1] [hopCount × 24-byte records]
//
// Each record: switchID(4) stage(1) ingressNs(8) egressNs(8) queue(2)
// shard(1). Untraced frames carry no extension and serialize bit-identically
// to the pre-telemetry format.

// TraceFlag is the bit stolen from the chain-count byte that marks a frame
// as carrying the telemetry extension. Chain counts are bounded by
// MaxChainHops (16), so bits 5-7 of the SC byte were always zero before.
const TraceFlag = 0x80

// TraceRecLen is the wire size of one hop record.
const TraceRecLen = 24

// MaxTraceHops bounds the number of hop records a frame may accumulate
// (a chain traversal can log transit + local processing per switch, plus
// ingest and relay records; 32 leaves slack for the longest chains).
const MaxTraceHops = 32

// TraceStage identifies which processing step a hop record describes.
type TraceStage uint8

const (
	// StageTransit: the frame crossed a switch without local processing.
	StageTransit TraceStage = iota + 1
	// StageHead: head of the chain assigned the write version.
	StageHead
	// StageMid: a mid-chain replica applied the ordered write.
	StageMid
	// StageTail: the tail committed the mutation and generated the reply.
	StageTail
	// StageRead: the tail served a read from its register file.
	StageRead
	// StageIngest: a transport node's socket/dispatch layer handled the
	// frame (queueing between ingress and the worker shard).
	StageIngest
	// StageRelay: the relay tier fanned the committed event out.
	StageRelay
)

func (s TraceStage) String() string {
	switch s {
	case StageTransit:
		return "transit"
	case StageHead:
		return "head"
	case StageMid:
		return "mid"
	case StageTail:
		return "tail"
	case StageRead:
		return "read"
	case StageIngest:
		return "ingest"
	case StageRelay:
		return "relay"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// TraceHop is one decoded hop record.
type TraceHop struct {
	SwitchID  uint32
	Stage     TraceStage
	IngressNs int64
	EgressNs  int64
	Queue     uint16 // pending frames at the hop when this frame arrived
	Shard     uint8  // worker shard that processed the frame
}

func putTraceHop(b []byte, h *TraceHop) {
	binary.BigEndian.PutUint32(b[0:4], h.SwitchID)
	b[4] = byte(h.Stage)
	binary.BigEndian.PutUint64(b[5:13], uint64(h.IngressNs))
	binary.BigEndian.PutUint64(b[13:21], uint64(h.EgressNs))
	binary.BigEndian.PutUint16(b[21:23], h.Queue)
	b[23] = h.Shard
}

func decodeTraceHop(b []byte) TraceHop {
	return TraceHop{
		SwitchID:  binary.BigEndian.Uint32(b[0:4]),
		Stage:     TraceStage(b[4]),
		IngressNs: int64(binary.BigEndian.Uint64(b[5:13])),
		EgressNs:  int64(binary.BigEndian.Uint64(b[13:21])),
		Queue:     binary.BigEndian.Uint16(b[21:23]),
		Shard:     b[23],
	}
}

// TraceHopCount returns the number of hop records carried by the header.
func (h *NetChain) TraceHopCount() int { return len(h.Trace) / TraceRecLen }

// TraceHops decodes the hop records, appending them to into (pass a
// reusable slice to avoid allocation).
func (h *NetChain) TraceHops(into []TraceHop) []TraceHop {
	for off := 0; off+TraceRecLen <= len(h.Trace); off += TraceRecLen {
		into = append(into, decodeTraceHop(h.Trace[off:]))
	}
	return into
}

// EnableTrace marks the frame for in-band telemetry with an empty hop
// list. Clients call this on sampled queries after building the frame.
func (f *Frame) EnableTrace() {
	f.NC.Traced = true
	f.traceBuf = f.traceBuf[:0]
	f.NC.Trace = f.traceBuf
	f.traceOwned = true
}

// CopyTraceFrom marks f traced and copies src's hop records into f's own
// storage — how a derived frame (a push-watch event bred from a traced
// reply) inherits the query's telemetry. No-op when src is untraced.
// Callers that already serialized f must Finalize() afterwards.
func (f *Frame) CopyTraceFrom(src *Frame) {
	if !src.NC.Traced {
		return
	}
	f.NC.Traced = true
	n := len(src.NC.Trace)
	if cap(f.traceBuf) < n {
		f.traceBuf = make([]byte, n, MaxTraceHops*TraceRecLen)
	}
	f.traceBuf = f.traceBuf[:n]
	copy(f.traceBuf, src.NC.Trace)
	f.NC.Trace = f.traceBuf
	f.traceOwned = true
}

// AppendTraceHop appends one hop record to a traced frame. It is a no-op
// on untraced frames (the common case — a single branch on the fast path)
// and drops records beyond MaxTraceHops rather than failing the query.
// The record storage is the frame's own traceBuf, so decoded frames whose
// Trace aliases the receive buffer are copied-on-append, and pooled frames
// stop allocating once the buffer is warm.
func (f *Frame) AppendTraceHop(h TraceHop) bool {
	if !f.NC.Traced {
		return false
	}
	n := len(f.NC.Trace)
	if n/TraceRecLen >= MaxTraceHops {
		return false
	}
	if cap(f.traceBuf) < n+TraceRecLen {
		nb := make([]byte, n, MaxTraceHops*TraceRecLen)
		copy(nb, f.NC.Trace)
		f.traceBuf = nb
		f.traceOwned = true
	} else if !f.traceOwned {
		f.traceBuf = f.traceBuf[:n]
		copy(f.traceBuf, f.NC.Trace)
		f.traceOwned = true
	}
	f.traceBuf = f.traceBuf[:n+TraceRecLen]
	putTraceHop(f.traceBuf[n:], &h)
	f.NC.Trace = f.traceBuf
	return true
}
