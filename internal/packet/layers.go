package packet

import (
	"encoding/binary"
	"fmt"
)

// EtherTypeIPv4 is the Ethernet payload type for IPv4.
const EtherTypeIPv4 = 0x0800

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// Sizes of the fixed carrier headers.
const (
	EthernetLen = 14
	IPv4Len     = 20 // no options
	UDPLen      = 8
)

// Ethernet is the 14-byte L2 header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// DecodeFromBytes parses the header from data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetLen {
		return fmt.Errorf("packet: ethernet header truncated: %d bytes", len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// SerializeTo appends the header to buf and returns the extended slice.
func (e *Ethernet) SerializeTo(buf []byte) []byte {
	buf = append(buf, e.Dst[:]...)
	buf = append(buf, e.Src[:]...)
	return binary.BigEndian.AppendUint16(buf, e.EtherType)
}

// IPv4 is a 20-byte option-less IPv4 header. TotalLen covers the IPv4
// header plus everything after it.
type IPv4 struct {
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst Addr
}

// DecodeFromBytes parses the header from data and verifies the checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4Len {
		return fmt.Errorf("packet: ipv4 header truncated: %d bytes", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("packet: ipv4 version %d", v)
	}
	if ihl := int(data[0]&0x0f) * 4; ihl != IPv4Len {
		return fmt.Errorf("packet: ipv4 options unsupported (ihl=%d)", ihl)
	}
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = Addr(binary.BigEndian.Uint32(data[12:16]))
	ip.Dst = Addr(binary.BigEndian.Uint32(data[16:20]))
	if sum := headerChecksum(data[:IPv4Len]); sum != 0 {
		return fmt.Errorf("packet: ipv4 checksum mismatch (residual %#04x)", sum)
	}
	return nil
}

// SerializeTo appends the header (with a freshly computed checksum) to buf.
func (ip *IPv4) SerializeTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, 0x45, 0) // version+IHL, DSCP
	buf = binary.BigEndian.AppendUint16(buf, ip.TotalLen)
	buf = binary.BigEndian.AppendUint16(buf, ip.ID)
	buf = binary.BigEndian.AppendUint16(buf, 0) // flags+fragment offset
	buf = append(buf, ip.TTL, ip.Protocol, 0, 0)
	buf = binary.BigEndian.AppendUint32(buf, uint32(ip.Src))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ip.Dst))
	sum := headerChecksum(buf[start:])
	binary.BigEndian.PutUint16(buf[start+10:], sum)
	return buf
}

// headerChecksum computes the RFC 791 ones-complement checksum over hdr
// (with the checksum field bytes included as stored; pass zeroes there when
// computing, or a full header when verifying — a valid header sums to 0).
func headerChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// UDP is the 8-byte transport header. Checksum is optional in IPv4 and this
// implementation always emits 0 (NetChain integrity lives in the magic and
// length fields; datacenter links are assumed non-corrupting, §4.3).
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // UDP header + payload
}

// DecodeFromBytes parses the header from data.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPLen {
		return fmt.Errorf("packet: udp header truncated: %d bytes", len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	if int(u.Length) > len(data) {
		return fmt.Errorf("packet: udp length %d exceeds datagram %d", u.Length, len(data))
	}
	if u.Length < UDPLen {
		return fmt.Errorf("packet: udp length %d below header size", u.Length)
	}
	return nil
}

// SerializeTo appends the header to buf.
func (u *UDP) SerializeTo(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint16(buf, u.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, u.DstPort)
	buf = binary.BigEndian.AppendUint16(buf, u.Length)
	return binary.BigEndian.AppendUint16(buf, 0)
}
