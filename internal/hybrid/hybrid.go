// Package hybrid implements the accelerator deployment of §6: "NetChain
// can be used as an accelerator to server-based solutions ... The key
// space is partitioned to store data in the network and the servers
// separately. NetChain can be used to store hot data with small value
// size, and servers store big and less popular data."
//
// The Store routes each key to a tier:
//
//   - values larger than the switch line-rate budget always live on the
//     backing (server) store — the dataplane cannot hold them (§6);
//   - small values start on the backing store and are promoted into
//     NetChain once their read rate proves them hot (insert + copy);
//   - a bounded in-network footprint demotes the coldest resident when a
//     promotion would exceed it, keeping switch SRAM for what earns it.
//
// Reads hit NetChain first (sub-RTT) and fall through to the backing
// store; writes follow the key's current tier so each key has exactly one
// authoritative home and the combined store stays consistent.
package hybrid

import (
	"fmt"
	"sync"

	"netchain/internal/kv"
)

// NetKV is the in-network tier: the NetChain client plus the control-plane
// insert/remove hooks (satisfied by netchain.Cluster + Client glue).
type NetKV interface {
	Insert(k kv.Key) error // allocate chain slots (control plane)
	Remove(k kv.Key) error // free chain slots after demotion
	Read(k kv.Key) (kv.Value, kv.Version, error)
	Write(k kv.Key, v kv.Value) (kv.Version, error)
	Delete(k kv.Key) error
}

// BackKV is the server-based tier (zkkv.Client satisfies it via adapter).
type BackKV interface {
	Read(k kv.Key) (kv.Value, error)
	Write(k kv.Key, v kv.Value) error
	Delete(k kv.Key) error
}

// Config tunes tiering.
type Config struct {
	// MaxInlineValue is the largest value NetChain holds (the paper's
	// line-rate bound: stages × slot bytes, 128 B). Default 128.
	MaxInlineValue int
	// PromoteAfter is the number of backing-store reads within the decay
	// window that makes a key hot. Default 3.
	PromoteAfter int
	// MaxResident bounds how many keys live in NetChain. Default 1024.
	MaxResident int
}

func (c *Config) defaults() {
	if c.MaxInlineValue == 0 {
		c.MaxInlineValue = 128
	}
	if c.PromoteAfter == 0 {
		c.PromoteAfter = 3
	}
	if c.MaxResident == 0 {
		c.MaxResident = 1024
	}
}

// Stats counts tier activity.
type Stats struct {
	NetReads, BackReads   uint64
	NetWrites, BackWrites uint64
	Promotions, Demotions uint64
	Oversize              uint64 // writes too big for the network tier
}

// Store is the tiered coordinator store.
type Store struct {
	cfg  Config
	net  NetKV
	back BackKV

	mu       sync.Mutex
	resident map[kv.Key]*entry // keys currently in NetChain
	heat     map[kv.Key]int    // backing-store read counts since promotion scan
	clock    uint64            // logical clock for LRU demotion
	stats    Stats
}

type entry struct {
	key      kv.Key
	lastUsed uint64
}

// New builds a tiered store.
func New(cfg Config, net NetKV, back BackKV) (*Store, error) {
	if net == nil || back == nil {
		return nil, fmt.Errorf("hybrid: both tiers required")
	}
	cfg.defaults()
	return &Store{
		cfg:      cfg,
		net:      net,
		back:     back,
		resident: make(map[kv.Key]*entry),
		heat:     make(map[kv.Key]int),
	}, nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Resident reports whether k currently lives in the network tier.
func (s *Store) Resident(k kv.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.resident[k]
	return ok
}

// ResidentCount returns the network-tier population.
func (s *Store) ResidentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.resident)
}

// Read returns k's value from its current tier, counting heat and
// promoting when a backing-store key proves hot.
func (s *Store) Read(k kv.Key) (kv.Value, error) {
	if s.touchResident(k) {
		v, _, err := s.net.Read(k)
		if err == nil {
			s.bump(&s.stats.NetReads)
			return v, nil
		}
		if err != kv.ErrNotFound {
			return nil, err
		}
		// Not in the network after all (lost race with demotion): fall
		// through.
	}
	v, err := s.back.Read(k)
	if err != nil {
		return nil, err
	}
	s.bump(&s.stats.BackReads)
	s.recordHeat(k, v)
	return v, nil
}

// Write stores v in k's tier. Values over the inline bound always go to
// the backing store, demoting the key if it was resident.
func (s *Store) Write(k kv.Key, v kv.Value) error {
	if len(v) > s.cfg.MaxInlineValue {
		s.mu.Lock()
		s.stats.Oversize++
		wasResident := s.resident[k] != nil
		s.mu.Unlock()
		if wasResident {
			if err := s.demote(k); err != nil {
				return err
			}
		}
		s.bump(&s.stats.BackWrites)
		return s.back.Write(k, v)
	}
	if s.touchResident(k) {
		if _, err := s.net.Write(k, v); err != nil {
			return err
		}
		s.bump(&s.stats.NetWrites)
		return nil
	}
	s.bump(&s.stats.BackWrites)
	return s.back.Write(k, v)
}

// Delete removes k from both tiers.
func (s *Store) Delete(k kv.Key) error {
	if s.touchResident(k) {
		if err := s.net.Delete(k); err != nil && err != kv.ErrNotFound {
			return err
		}
		if err := s.demote(k); err != nil {
			return err
		}
	}
	err := s.back.Delete(k)
	if err == kv.ErrNotFound {
		return nil
	}
	return err
}

// touchResident updates LRU state and reports residency.
func (s *Store) touchResident(k kv.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.resident[k]
	if ok {
		s.clock++
		e.lastUsed = s.clock
	}
	return ok
}

func (s *Store) bump(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// recordHeat counts a backing read and promotes when hot.
func (s *Store) recordHeat(k kv.Key, v kv.Value) {
	if len(v) > s.cfg.MaxInlineValue {
		return // never promotable
	}
	s.mu.Lock()
	s.heat[k]++
	hot := s.heat[k] >= s.cfg.PromoteAfter
	if hot {
		delete(s.heat, k)
	}
	s.mu.Unlock()
	if hot {
		// Best effort: promotion failure leaves the key on the backing
		// store, which stays correct.
		_ = s.promote(k, v)
	}
}

// promote moves k into the network tier, demoting the LRU resident if the
// footprint is full.
func (s *Store) promote(k kv.Key, v kv.Value) error {
	s.mu.Lock()
	if _, already := s.resident[k]; already {
		s.mu.Unlock()
		return nil
	}
	var victim kv.Key
	evict := false
	if len(s.resident) >= s.cfg.MaxResident {
		victim = s.lruLocked()
		evict = true
	}
	s.mu.Unlock()

	if evict {
		if err := s.demote(victim); err != nil {
			return err
		}
	}
	if err := s.net.Insert(k); err != nil {
		return err
	}
	if _, err := s.net.Write(k, v); err != nil {
		_ = s.net.Remove(k)
		return err
	}
	s.mu.Lock()
	s.clock++
	s.resident[k] = &entry{key: k, lastUsed: s.clock}
	s.stats.Promotions++
	s.mu.Unlock()
	return nil
}

// demote writes the network copy back to the backing store and frees the
// chain slots.
func (s *Store) demote(k kv.Key) error {
	s.mu.Lock()
	_, ok := s.resident[k]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	delete(s.resident, k)
	s.stats.Demotions++
	s.mu.Unlock()

	v, _, err := s.net.Read(k)
	if err == nil {
		if werr := s.back.Write(k, v); werr != nil {
			return werr
		}
	} else if err != kv.ErrNotFound {
		return err
	}
	return s.net.Remove(k)
}

// lruLocked picks the least recently used resident. Called with s.mu held.
func (s *Store) lruLocked() kv.Key {
	var victim kv.Key
	best := ^uint64(0)
	for k, e := range s.resident {
		if e.lastUsed < best {
			best = e.lastUsed
			victim = k
		}
	}
	return victim
}
