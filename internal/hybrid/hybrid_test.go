package hybrid_test

import (
	"fmt"
	"testing"

	"netchain"
	"netchain/internal/hybrid"
	"netchain/internal/kv"
	"netchain/internal/zkkv"
)

// fakeNet is an in-memory NetKV with failure injection.
type fakeNet struct {
	slots      map[kv.Key]bool
	vals       map[kv.Key]kv.Value
	seq        uint64
	failInsert bool
}

func newFakeNet() *fakeNet {
	return &fakeNet{slots: map[kv.Key]bool{}, vals: map[kv.Key]kv.Value{}}
}

func (f *fakeNet) Insert(k kv.Key) error {
	if f.failInsert {
		return kv.ErrNoSpace
	}
	f.slots[k] = true
	return nil
}
func (f *fakeNet) Remove(k kv.Key) error {
	delete(f.slots, k)
	delete(f.vals, k)
	return nil
}
func (f *fakeNet) Read(k kv.Key) (kv.Value, kv.Version, error) {
	v, ok := f.vals[k]
	if !ok {
		return nil, kv.Version{}, kv.ErrNotFound
	}
	return v.Clone(), kv.Version{Seq: f.seq}, nil
}
func (f *fakeNet) Write(k kv.Key, v kv.Value) (kv.Version, error) {
	if !f.slots[k] {
		return kv.Version{}, kv.ErrNotFound
	}
	f.seq++
	f.vals[k] = v.Clone()
	return kv.Version{Seq: f.seq}, nil
}
func (f *fakeNet) Delete(k kv.Key) error {
	delete(f.vals, k)
	return nil
}

// fakeBack is an in-memory BackKV.
type fakeBack struct{ vals map[kv.Key]kv.Value }

func newFakeBack() *fakeBack { return &fakeBack{vals: map[kv.Key]kv.Value{}} }

func (f *fakeBack) Read(k kv.Key) (kv.Value, error) {
	v, ok := f.vals[k]
	if !ok {
		return nil, kv.ErrNotFound
	}
	return v.Clone(), nil
}
func (f *fakeBack) Write(k kv.Key, v kv.Value) error {
	f.vals[k] = v.Clone()
	return nil
}
func (f *fakeBack) Delete(k kv.Key) error {
	if _, ok := f.vals[k]; !ok {
		return kv.ErrNotFound
	}
	delete(f.vals, k)
	return nil
}

func newStore(t *testing.T, cfg hybrid.Config) (*hybrid.Store, *fakeNet, *fakeBack) {
	t.Helper()
	n, b := newFakeNet(), newFakeBack()
	s, err := hybrid.New(cfg, n, b)
	if err != nil {
		t.Fatal(err)
	}
	return s, n, b
}

func TestColdKeysStayOnBackingStore(t *testing.T) {
	s, _, _ := newStore(t, hybrid.Config{PromoteAfter: 3})
	k := kv.KeyFromString("cold")
	if err := s.Write(k, kv.Value("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(k)
	if err != nil || string(v) != "v" {
		t.Fatalf("read: %q %v", v, err)
	}
	if s.Resident(k) {
		t.Fatal("one read must not promote")
	}
	st := s.Stats()
	if st.BackReads != 1 || st.BackWrites != 1 || st.Promotions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHotKeyPromotes(t *testing.T) {
	s, _, _ := newStore(t, hybrid.Config{PromoteAfter: 3})
	k := kv.KeyFromString("hot")
	s.Write(k, kv.Value("v"))
	for i := 0; i < 3; i++ {
		if _, err := s.Read(k); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Resident(k) {
		t.Fatal("3 reads must promote")
	}
	// Subsequent reads come from the network tier.
	pre := s.Stats().NetReads
	if _, err := s.Read(k); err != nil {
		t.Fatal(err)
	}
	if s.Stats().NetReads != pre+1 {
		t.Fatal("promoted key must be served by NetChain")
	}
	// Writes follow the tier.
	if err := s.Write(k, kv.Value("v2")); err != nil {
		t.Fatal(err)
	}
	if s.Stats().NetWrites != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	v, _ := s.Read(k)
	if string(v) != "v2" {
		t.Fatalf("read after promoted write: %q", v)
	}
}

func TestOversizeValuesNeverPromoteAndDemote(t *testing.T) {
	s, _, _ := newStore(t, hybrid.Config{MaxInlineValue: 16, PromoteAfter: 2})
	k := kv.KeyFromString("big")
	big := make(kv.Value, 64)
	s.Write(k, big)
	for i := 0; i < 5; i++ {
		s.Read(k)
	}
	if s.Resident(k) {
		t.Fatal("oversize value must never promote")
	}
	// Promote with a small value, then grow it: the key must demote.
	small := kv.KeyFromString("grow")
	s.Write(small, kv.Value("s"))
	s.Read(small)
	s.Read(small)
	if !s.Resident(small) {
		t.Fatal("small key should have promoted")
	}
	if err := s.Write(small, big); err != nil {
		t.Fatal(err)
	}
	if s.Resident(small) {
		t.Fatal("oversize write must demote")
	}
	v, err := s.Read(small)
	if err != nil || len(v) != 64 {
		t.Fatalf("read after demotion: %d bytes, %v", len(v), err)
	}
	if s.Stats().Oversize != 2 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestFootprintBoundEvictsLRU(t *testing.T) {
	s, _, _ := newStore(t, hybrid.Config{PromoteAfter: 1, MaxResident: 2})
	keys := []kv.Key{kv.KeyFromString("a"), kv.KeyFromString("b"), kv.KeyFromString("c")}
	for _, k := range keys {
		s.Write(k, kv.Value("v-"+k.String()))
		s.Read(k) // promotes (PromoteAfter=1)
	}
	if s.ResidentCount() != 2 {
		t.Fatalf("resident = %d, want 2", s.ResidentCount())
	}
	if s.Resident(keys[0]) {
		t.Fatal("LRU key 'a' should have been demoted")
	}
	if s.Stats().Demotions != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Demoted key still readable with its latest value (this read itself
	// re-promotes at PromoteAfter=1, evicting the next LRU — the bound
	// must hold throughout).
	v, err := s.Read(keys[0])
	if err != nil || string(v) != "v-a" {
		t.Fatalf("demoted read: %q %v", v, err)
	}
	if s.ResidentCount() > 2 {
		t.Fatalf("footprint bound violated: %d", s.ResidentCount())
	}
}

func TestDeleteClearsBothTiers(t *testing.T) {
	s, n, _ := newStore(t, hybrid.Config{PromoteAfter: 1})
	k := kv.KeyFromString("k")
	s.Write(k, kv.Value("v"))
	s.Read(k) // promote
	if !s.Resident(k) {
		t.Fatal("setup: not promoted")
	}
	if err := s.Delete(k); err != nil {
		t.Fatal(err)
	}
	if s.Resident(k) || n.slots[k] {
		t.Fatal("delete must free the network slot")
	}
	if _, err := s.Read(k); err != kv.ErrNotFound {
		t.Fatalf("read after delete: %v", err)
	}
}

func TestPromotionFailureIsBenign(t *testing.T) {
	s, n, _ := newStore(t, hybrid.Config{PromoteAfter: 1})
	n.failInsert = true
	k := kv.KeyFromString("k")
	s.Write(k, kv.Value("v"))
	if _, err := s.Read(k); err != nil {
		t.Fatal(err)
	}
	if s.Resident(k) {
		t.Fatal("failed promotion must not mark resident")
	}
	v, err := s.Read(k)
	if err != nil || string(v) != "v" {
		t.Fatalf("backing store must keep serving: %q %v", v, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := hybrid.New(hybrid.Config{}, nil, newFakeBack()); err == nil {
		t.Fatal("nil net tier must be rejected")
	}
	if _, err := hybrid.New(hybrid.Config{}, newFakeNet(), nil); err == nil {
		t.Fatal("nil back tier must be rejected")
	}
}

// --- Integration: real NetChain cluster + real TCP ensemble ---------------

// ncAdapter glues a real cluster+client to the NetKV interface.
type ncAdapter struct {
	cluster *netchain.Cluster
	client  *netchain.Client
}

func (a ncAdapter) Insert(k kv.Key) error { return a.cluster.Insert(k) }
func (a ncAdapter) Remove(k kv.Key) error { return a.cluster.GC(k) }
func (a ncAdapter) Read(k kv.Key) (kv.Value, kv.Version, error) {
	return a.client.Read(k)
}
func (a ncAdapter) Write(k kv.Key, v kv.Value) (kv.Version, error) {
	return a.client.Write(k, v)
}
func (a ncAdapter) Delete(k kv.Key) error { return a.client.Delete(k) }

// zkAdapter glues the real TCP ensemble to BackKV.
type zkAdapter struct{ c *zkkv.Client }

func (a zkAdapter) Read(k kv.Key) (kv.Value, error)  { return a.c.ReadLeader(k) }
func (a zkAdapter) Write(k kv.Key, v kv.Value) error { return a.c.Write(k, v) }
func (a zkAdapter) Delete(k kv.Key) error {
	return a.c.Delete(k)
}

func TestIntegrationRealTiers(t *testing.T) {
	cluster, err := netchain.StartLocalCluster(netchain.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := cluster.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	addrs, stop, err := zkkv.StartEnsemble(3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	zc, err := zkkv.Dial(addrs[0], addrs[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	defer zc.Close()

	s, err := hybrid.New(hybrid.Config{PromoteAfter: 2, MaxResident: 8},
		ncAdapter{cluster: cluster, client: client}, zkAdapter{c: zc})
	if err != nil {
		t.Fatal(err)
	}

	// Hot small key: lands on servers, earns its way into the network.
	hot := kv.KeyFromString("hot/config")
	if err := s.Write(hot, kv.Value("fast")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Read(hot); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Resident(hot) {
		t.Fatal("hot key not promoted into the real chain")
	}
	v, err := s.Read(hot)
	if err != nil || string(v) != "fast" {
		t.Fatalf("network-tier read: %q %v", v, err)
	}

	// Big value: always server-side.
	big := kv.KeyFromString("blob/snapshot")
	blob := make(kv.Value, 4096)
	for i := range blob {
		blob[i] = byte(i)
	}
	if err := s.Write(big, blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Read(big); err != nil {
			t.Fatal(err)
		}
	}
	if s.Resident(big) {
		t.Fatal("blob must never enter the switch tier")
	}
	got, err := s.Read(big)
	if err != nil || len(got) != 4096 || got[100] != 100 {
		t.Fatalf("blob read: %d bytes, %v", len(got), err)
	}

	// Mixed churn: values stay correct across promotions/demotions.
	for i := 0; i < 20; i++ {
		k := kv.KeyFromUint64(uint64(i % 12))
		want := kv.Value(fmt.Sprintf("gen-%d", i))
		if err := s.Write(k, want); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
		gotV, err := s.Read(k)
		if err != nil || string(gotV) != string(want) {
			t.Fatalf("churn read %d: %q %v", i, gotV, err)
		}
	}
	if s.ResidentCount() > 8 {
		t.Fatalf("footprint bound violated: %d", s.ResidentCount())
	}
}
