package netchain_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndBinaries builds the three deployment binaries, boots a
// three-switch chain plus controller as separate processes, and drives
// them with netchainctl — the full multi-process deployment of §7 on
// loopback.
func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"netchaind", "netchain-controller", "netchainctl"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}

	// Fixed loopback ports for a deterministic address book.
	type sw struct{ virt, udp, rpc string }
	// The fourth switch boots with the others (static address books) but
	// is NOT given to the controller: the add-switch verb admits it live.
	switches := []sw{
		{"10.0.0.1", "127.0.0.1:19001", "127.0.0.1:19101"},
		{"10.0.0.2", "127.0.0.1:19002", "127.0.0.1:19102"},
		{"10.0.0.3", "127.0.0.1:19003", "127.0.0.1:19103"},
		{"10.0.0.4", "127.0.0.1:19004", "127.0.0.1:19104"},
	}
	clientVirt := "10.1.0.1"

	var procs []*exec.Cmd
	stopAll := func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}
	defer stopAll()

	for i, s := range switches {
		args := []string{
			"-addr", s.virt, "-udp", s.udp, "-rpc", s.rpc, "-slots", "1024",
		}
		for j, p := range switches {
			if i != j {
				args = append(args, "-peer", p.virt+"="+p.udp)
			}
		}
		// Replies are addressed to the client's virtual address; every
		// switch needs its mapping in the static book (netchainctl binds
		// the matching port with -bind).
		args = append(args, "-peer", clientVirt+"=127.0.0.1:19301")
		cmd := exec.Command(bins["netchaind"], args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start netchaind %d: %v", i, err)
		}
		procs = append(procs, cmd)
	}

	ctl := exec.Command(bins["netchain-controller"],
		"-rpc", "127.0.0.1:19200", "-replicas", "3", "-vnodes", "4",
		"-switch", "10.0.0.1=127.0.0.1:19101",
		"-switch", "10.0.0.2=127.0.0.1:19102",
		"-switch", "10.0.0.3=127.0.0.1:19103",
	)
	ctl.Stdout = os.Stderr
	ctl.Stderr = os.Stderr
	// Give the switch agents a moment to listen.
	time.Sleep(300 * time.Millisecond)
	if err := ctl.Start(); err != nil {
		t.Fatalf("start controller: %v", err)
	}
	procs = append(procs, ctl)
	time.Sleep(300 * time.Millisecond)

	run := func(args ...string) (string, error) {
		base := []string{
			"-controller", "127.0.0.1:19200",
			"-gateway", "10.0.0.1=127.0.0.1:19001",
			"-client", clientVirt,
			"-bind", "127.0.0.1:19301",
		}
		cmd := exec.Command(bins["netchainctl"], append(base, args...)...)
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// Control plane: allocate the key on its chain.
	out, err := run("insert", "e2e/key")
	if err != nil {
		t.Fatalf("insert: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("insert output: %q", out)
	}
	// Duplicate insert must fail through the whole RPC stack.
	if out, err := run("insert", "e2e/key"); err == nil {
		t.Fatalf("duplicate insert should fail, got %q", out)
	}

	// Data plane: write through the chain, read from the tail.
	out, err = run("put", "e2e/key", "hello-processes")
	if err != nil {
		t.Fatalf("put: %v\n%s", err, out)
	}
	out, err = run("get", "e2e/key")
	if err != nil {
		t.Fatalf("get: %v\n%s", err, out)
	}
	if !strings.Contains(out, "hello-processes") {
		t.Fatalf("get output: %q", out)
	}

	// Locks through the whole stack.
	if out, err = run("lock", "e2e/lock", "42"); err != nil || !strings.Contains(out, "ok") {
		// lock needs an insert first
		t.Logf("first lock attempt: %v %q", err, out)
	}
	if out, err = run("insert", "e2e/lock"); err != nil {
		t.Fatalf("insert lock: %v\n%s", err, out)
	}
	if out, err = run("lock", "e2e/lock", "42"); err != nil || !strings.Contains(out, "ok") {
		t.Fatalf("lock: %v %q", err, out)
	}
	if out, err = run("lock", "e2e/lock", "43"); err != nil || !strings.Contains(out, "denied") {
		t.Fatalf("contended lock: %v %q", err, out)
	}
	if out, err = run("unlock", "e2e/lock", "42"); err != nil || !strings.Contains(out, "ok") {
		t.Fatalf("unlock: %v %q", err, out)
	}
	if out, err = run("del", "e2e/key"); err != nil || !strings.Contains(out, "ok") {
		t.Fatalf("del: %v %q", err, out)
	}

	// Elastic membership through the binaries: admit the pre-cabled fourth
	// switch live, keep serving, then drain it back out.
	if out, err = run("insert", "e2e/elastic"); err != nil {
		t.Fatalf("insert elastic: %v\n%s", err, out)
	}
	if out, err = run("put", "e2e/elastic", "before-resize"); err != nil {
		t.Fatalf("put elastic: %v\n%s", err, out)
	}
	if out, err = run("add-switch", "10.0.0.4=127.0.0.1:19104"); err != nil || !strings.Contains(out, "migrated") {
		t.Fatalf("add-switch: %v %q", err, out)
	}
	if out, err = run("get", "e2e/elastic"); err != nil || !strings.Contains(out, "before-resize") {
		t.Fatalf("get after add-switch: %v %q", err, out)
	}
	if out, err = run("put", "e2e/elastic", "after-scale-out"); err != nil {
		t.Fatalf("put after add-switch: %v\n%s", err, out)
	}
	if out, err = run("remove-switch", "10.0.0.4"); err != nil || !strings.Contains(out, "migrated") {
		t.Fatalf("remove-switch: %v %q", err, out)
	}
	if out, err = run("get", "e2e/elastic"); err != nil || !strings.Contains(out, "after-scale-out") {
		t.Fatalf("get after remove-switch: %v %q", err, out)
	}
	fmt.Println("e2e verified: insert/put/get/lock/unlock/del + add-switch/remove-switch across real processes")
}
