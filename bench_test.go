// Benchmarks regenerating the paper's evaluation: one bench per table and
// figure (§8), reporting the headline quantities as custom metrics, plus
// ablation benches for the design choices called out in DESIGN.md.
// Absolute values come from the scaled simulation substrate — the shapes
// (who wins, by what factor, where crossovers fall) are what reproduce the
// paper; EXPERIMENTS.md records the side-by-side comparison.
package netchain

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netchain/internal/core"
	"netchain/internal/experiments"
	"netchain/internal/kv"
	"netchain/internal/mc"
	"netchain/internal/packet"
	"netchain/internal/swsim"
	"netchain/internal/zkkv"
)

func quickOpts() experiments.ThroughputOpts {
	return experiments.ThroughputOpts{
		StoreSize: 2000,
		Window:    25 * time.Millisecond,
		ZKWindow:  200 * time.Millisecond,
	}
}

// benchReadSwitch builds a one-key switch warmed with a 64 B value.
func benchReadSwitch(b *testing.B) (*core.Switch, kv.Key) {
	b.Helper()
	sw, err := core.NewSwitch(packet.AddrFrom4(10, 0, 0, 1), swsim.Tofino())
	if err != nil {
		b.Fatal(err)
	}
	key := kv.KeyFromString("bench")
	sw.InstallKey(key)
	seed := &packet.NetChain{Op: kv.OpWrite, Key: key, Value: make([]byte, 64), QueryID: 1}
	wf := packet.NewQuery(packet.AddrFrom4(10, 1, 0, 1), sw.Addr(), 4000, seed)
	sw.ProcessLocal(wf)
	return sw, key
}

// BenchmarkTable1SoftwareDataplane measures this repo's dataplane ns/op —
// the "This repo (software)" column of Table 1 (the paper compares 30 Mpps
// NetBricks servers against 4 Bpps Tofino ASICs). The frame is reused the
// way the transport's pooled frames are, so the number is the dataplane's
// own cost: the seqlock read path runs lock- and allocation-free.
func BenchmarkTable1SoftwareDataplane(b *testing.B) {
	sw, key := benchReadSwitch(b)
	f := &packet.Frame{}
	nc := &packet.NetChain{Op: kv.OpRead, Key: key, QueryID: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packet.NewQueryInto(f, packet.AddrFrom4(10, 1, 0, 1), sw.Addr(), 4000, nc)
		sw.ProcessLocal(f)
	}
	b.StopTimer()
	pps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pps/1e6, "Mpps/core")
}

// BenchmarkReadDataplaneParallel drives the same hot read from every
// core at once: with the seqlock fast path there is no shared lock to
// convoy on, so Mpps should scale with GOMAXPROCS (on a single-core
// machine it matches the serial number).
func BenchmarkReadDataplaneParallel(b *testing.B) {
	sw, key := benchReadSwitch(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		f := &packet.Frame{}
		nc := &packet.NetChain{Op: kv.OpRead, Key: key, QueryID: 3}
		for pb.Next() {
			packet.NewQueryInto(f, packet.AddrFrom4(10, 1, 0, 2), sw.Addr(), 4001, nc)
			sw.ProcessLocal(f)
		}
	})
	b.StopTimer()
	pps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(pps/1e6, "Mpps")
}

func reportSeries(b *testing.B, f *experiments.Figure, series string, x float64, unit string, div float64) {
	if y, ok := f.Get(series, x); ok {
		b.ReportMetric(y/div, unit)
	}
}

// BenchmarkFig9a: throughput vs value size.
func BenchmarkFig9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig9a(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, f, "NetChain(4)", 64, "NetChain4_MQPS", 1e6)
		reportSeries(b, f, "NetChain(max)", 64, "NetChainMax_BQPS", 1e9)
		reportSeries(b, f, "ZooKeeper", 64, "ZooKeeper_KQPS", 1e3)
	}
}

// BenchmarkFig9b: throughput vs store size.
func BenchmarkFig9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig9b(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, f, "NetChain(4)", 20000, "NetChain4_MQPS@20K", 1e6)
		reportSeries(b, f, "NetChain(4)", 40000, "NetChain4_MQPS@40K", 1e6)
	}
}

// BenchmarkFig9c: throughput vs write ratio.
func BenchmarkFig9c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig9c(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, f, "NetChain(4)", 0, "NetChain4_MQPS@0w", 1e6)
		reportSeries(b, f, "NetChain(4)", 100, "NetChain4_MQPS@100w", 1e6)
		reportSeries(b, f, "ZooKeeper", 0, "ZK_KQPS@0w", 1e3)
		reportSeries(b, f, "ZooKeeper", 100, "ZK_KQPS@100w", 1e3)
	}
}

// BenchmarkFig9d: throughput vs loss rate.
func BenchmarkFig9d(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig9d(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, f, "NetChain(4)", 10, "NetChain4_MQPS@10%loss", 1e6)
		reportSeries(b, f, "ZooKeeper", 1, "ZK_KQPS@1%loss", 1e3)
	}
}

// BenchmarkFig9e: latency vs throughput.
func BenchmarkFig9e(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig9e(quickOpts())
		if err != nil {
			b.Fatal(err)
		}
		var ncLat float64
		n := 0.0
		for _, p := range f.Points {
			if p.Series == "NetChain (read/write)" {
				ncLat += p.Y
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(ncLat/n, "NetChain_µs")
		}
		if y, ok := firstPointOf(f, "ZooKeeper (read)"); ok {
			b.ReportMetric(y, "ZKread_µs")
		}
		if y, ok := firstPointOf(f, "ZooKeeper (write)"); ok {
			b.ReportMetric(y, "ZKwrite_µs")
		}
	}
}

// BenchmarkFig9eWindow sweeps the client's outstanding-query window at a
// fixed offered load on the simulated substrate: window=1 is the
// serialized closed loop (throughput ≈ 1/RTT); window=16 pipelines the
// same client into the open-loop regime Fig. 9(e) is measured in, and
// must deliver ≥2× the ops/sec at equal or better tail latency.
func BenchmarkFig9eWindow(b *testing.B) {
	for _, w := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Fig9eWindows(quickOpts(), []int{w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pts[0].QPS/1e6, "MQPS")
				b.ReportMetric(pts[0].P50us, "p50_µs")
				b.ReportMetric(pts[0].P99us, "p99_µs")
			}
		})
	}
}

func firstPointOf(f *experiments.Figure, series string) (float64, bool) {
	for _, p := range f.Points {
		if p.Series == series {
			return p.Y, true
		}
	}
	return 0, false
}

// BenchmarkFig9f: spine-leaf scalability.
func BenchmarkFig9f(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig9f(experiments.Fig9fOpts{Samples: 2000})
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, f, "NetChain (read)", 96, "read_BQPS@96sw", 1e9)
		reportSeries(b, f, "NetChain (write)", 96, "write_BQPS@96sw", 1e9)
		reportSeries(b, f, "NetChain (read)", 6, "read_BQPS@6sw", 1e9)
	}
}

func fig10Quick(vgroups int, presync bool) experiments.Fig10Opts {
	return experiments.Fig10Opts{
		VGroups:   vgroups,
		Scale:     20000,
		StoreSize: 1000,
		Duration:  40 * time.Second,
		FailAt:    8 * time.Second,
		RecoverAt: 15 * time.Second,
		Bucket:    time.Second,
		PreSync:   presync,
	}
}

// BenchmarkFig10a: failure handling, single virtual group.
func BenchmarkFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(fig10Quick(1, false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MinRateDuringRecovery/res.BaselineRate, "min%ofBaseline")
		b.ReportMetric(res.RecoveryDone.Seconds(), "recoveryDone_s")
	}
}

// BenchmarkFig10b: failure handling, many virtual groups.
func BenchmarkFig10b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(fig10Quick(60, false))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MinRateDuringRecovery/res.BaselineRate, "min%ofBaseline")
		b.ReportMetric(float64(res.GroupsRecovered), "groupsRecovered")
	}
}

// BenchmarkResize: elastic scale-out + scale-in via live virtual-group
// migration — read availability and groups moved while the ring grows by
// S4 and drains S1 (the scale-free half of the paper's title, Fig. 8
// testbed).
func BenchmarkResize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunResize(experiments.ResizeOpts{
			Scale:     50000,
			VNodes:    4,
			StoreSize: 300,
			Duration:  12 * time.Second,
			AddAt:     2 * time.Second,
			RemoveAt:  7 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MinReadRateDuring/res.BaselineReadRate, "minRead%ofBaseline")
		b.ReportMetric(float64(res.GroupsMigratedOut+res.GroupsMigratedIn), "groupsMigrated")
		b.ReportMetric(float64(res.WritesUnavailable), "writesBounced")
	}
}

// BenchmarkFig11: transaction throughput vs contention.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig11(experiments.Fig11Opts{
			ContentionIndexes: []float64{0.01, 1},
			Clients:           []int{1, 10},
			ColdKeys:          500,
			NetChainWindow:    10 * time.Millisecond,
			ZKWindow:          500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, f, "NetChain (10 clients)", 0.01, "NetChain10_txn/s", 1)
		reportSeries(b, f, "NetChain (10 clients)", 1, "NetChain10_txn/s@ci1", 1)
		reportSeries(b, f, "ZooKeeper (10 clients)", 0.01, "ZK10_txn/s", 1)
	}
}

// BenchmarkTLAModelCheck: state-exploration rate of the appendix model.
func BenchmarkTLAModelCheck(b *testing.B) {
	states := 0
	for i := 0; i < b.N; i++ {
		ck, err := mc.New(mc.DefaultBounds())
		if err != nil {
			b.Fatal(err)
		}
		res := ck.Run()
		if res.Violation != nil {
			b.Fatalf("unexpected violation: %s", res.Reason)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkAblationRecirculation: values beyond one pipeline pass halve
// the switch budget (§6) — NetChain(max) drops while client-bound
// delivered throughput stays flat. Write-only so every query carries the
// oversized value through the chain (read requests are empty on the wire;
// the recirculation cost rides on value-bearing packets).
func BenchmarkAblationRecirculation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := quickOpts()
		small.ValueSize = 128
		small.WriteRatio = 1
		big := quickOpts()
		big.ValueSize = 256
		big.WriteRatio = 1
		fa, err := experiments.Fig9aPoint(small, 4)
		if err != nil {
			b.Fatal(err)
		}
		fb, err := experiments.Fig9aPoint(big, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fa.MaxQPS/1e9, "max_BQPS@128B")
		b.ReportMetric(fb.MaxQPS/1e9, "max_BQPS@256B")
	}
}

// BenchmarkAblationPreSync: Algorithm 3 Step 1 (pre-sync before the stop
// window) shrinks the recovery dip.
func BenchmarkAblationPreSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off, err := experiments.Fig10(fig10Quick(1, false))
		if err != nil {
			b.Fatal(err)
		}
		on, err := experiments.Fig10(fig10Quick(1, true))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*off.MinRateDuringRecovery/off.BaselineRate, "dip%_noPreSync")
		b.ReportMetric(100*on.MinRateDuringRecovery/on.BaselineRate, "dip%_preSync")
	}
}

// BenchmarkAblationChainVsPB: chain replication needs n+1 messages per
// write against classical primary-backup's 2n (§2.2); measured switch
// traversals per write on the testbed versus the PB bound.
func BenchmarkAblationChainVsPB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		msgs, err := experiments.ChainMessagesPerWrite()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(msgs, "chainMsgs/write")
		b.ReportMetric(float64(2*3), "pbMsgs/write") // 2n for n=3 replicas
	}
}

// BenchmarkRealUDPWriteLatency: one write round trip through the real
// three-switch software chain on loopback.
func BenchmarkRealUDPWriteLatency(b *testing.B) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient(0)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	k := KeyFromString("bench")
	if err := cl.Insert(k); err != nil {
		b.Fatal(err)
	}
	v := Value("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(k, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealUDPWritePipelined: b.N writes through one client and the
// real three-switch software chain with the given in-flight window.
// window=1 issues serially (the pre-pipelining closed loop); larger
// windows keep the pipe full through WriteAsync with the transport's own
// backpressure pacing submission. Per-op latency is measured submit→reply.
func BenchmarkRealUDPWritePipelined(b *testing.B) {
	for _, w := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			cl, err := StartLocalCluster(ClusterConfig{ClientWindow: w})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			c, err := cl.NewClient(0)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			k := KeyFromString("bench")
			if err := cl.Insert(k); err != nil {
				b.Fatal(err)
			}
			v := Value("0123456789abcdef")
			if _, err := c.Write(k, v); err != nil { // warm the chain
				b.Fatal(err)
			}
			lat := make([]time.Duration, b.N)
			var fails atomic.Uint64
			var wg sync.WaitGroup
			b.ResetTimer()
			wg.Add(b.N)
			for i := 0; i < b.N; i++ {
				i := i
				start := time.Now()
				c.WriteAsync(k, v, func(_ Version, err error) {
					lat[i] = time.Since(start)
					if err != nil {
						fails.Add(1)
					}
					wg.Done()
				})
			}
			wg.Wait()
			b.StopTimer()
			if n := fails.Load(); n > 0 {
				b.Fatalf("%d of %d writes failed", n, b.N)
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			b.ReportMetric(float64(lat[len(lat)*50/100].Microseconds()), "p50_µs")
			b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99_µs")
		})
	}
}

// BenchmarkZKKVWriteLatency: one quorum write through the real TCP
// baseline ensemble on loopback — compare with BenchmarkRealUDPWriteLatency.
func BenchmarkZKKVWriteLatency(b *testing.B) {
	addrs, stop, err := zkkv.StartEnsemble(3)
	if err != nil {
		b.Fatal(err)
	}
	defer stop()
	c, err := zkkv.Dial(addrs[0], addrs[1:]...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	k := kv.KeyFromString("bench")
	v := kv.Value("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Write(k, v); err != nil {
			b.Fatal(err)
		}
	}
}
