// Command netchain-relay runs the push-watch fan-out tier standalone:
// tails publish one event frame per applied mutation to the ingest
// endpoint, and subscribers lease (or multicast-join) ordered event
// streams via the control endpoint. Deployments that don't co-locate the
// relay with the controller run it here, next to the subscribers it
// serves.
//
// Example:
//
//	netchain-relay -udp 127.0.0.1:9400 -addr 10.255.0.2 -debug-addr 127.0.0.1:9490
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"netchain/internal/packet"
	"netchain/internal/relay"
	"netchain/internal/telemetry"
)

func main() {
	bind := flag.String("udp", "127.0.0.1:9400", "UDP bind for event ingest (control binds the next port up)")
	addrFlag := flag.String("addr", "10.255.0.2", "virtual NetChain address of the relay")
	mcast := flag.Bool("multicast", false, "fan events out over per-group UDP multicast instead of unicast leases")
	batch := flag.Int("batch", 0, "datagrams drained per ingest syscall (0 = default)")
	debugAddr := flag.String("debug-addr", "", "HTTP bind for the metrics plane: /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof (empty = disabled)")
	flag.Parse()

	vaddr, err := packet.ParseAddr(*addrFlag)
	if err != nil {
		log.Fatalf("netchain-relay: %v", err)
	}
	mode := relay.ModeUnicast
	if *mcast {
		mode = relay.ModeMulticast
	}
	rs, err := relay.Start(relay.Config{
		Bind:      *bind,
		Addr:      vaddr,
		Mode:      mode,
		RecvBatch: *batch,
	})
	if err != nil {
		log.Fatalf("netchain-relay: %v", err)
	}
	defer rs.Close()

	dbg := ""
	if *debugAddr != "" {
		reg := telemetry.NewRegistry()
		rs.RegisterMetrics(reg)
		srv, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatalf("netchain-relay: debug server: %v", err)
		}
		defer srv.Close()
		dbg = fmt.Sprintf(", metrics http://%s/metrics", srv.Addr)
	}
	fmt.Printf("netchain-relay %v: %s ingest %v, control %v%s\n",
		vaddr, rs.Mode(), rs.IngestEndpoint(), rs.ControlEndpoint(), dbg)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
}
