// Command netchaind runs one NetChain software switch: the dataplane
// behind a UDP socket plus the control-plane agent behind a net/rpc TCP
// socket (the paper's per-switch agent, §7).
//
// The address book maps virtual NetChain addresses to real endpoints;
// every node of a deployment must share the same book.
//
// Example (three chain switches on one machine):
//
//	netchaind -addr 10.0.0.1 -udp 127.0.0.1:9001 -rpc 127.0.0.1:9101 \
//	   -peer 10.0.0.2=127.0.0.1:9002 -peer 10.0.0.3=127.0.0.1:9003
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netchain/internal/core"
	"netchain/internal/packet"
	"netchain/internal/swsim"
	"netchain/internal/telemetry"
	"netchain/internal/transport"
)

type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }
func (p *peerList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func main() {
	addrFlag := flag.String("addr", "", "virtual NetChain address of this switch, e.g. 10.0.0.1 (required)")
	udpBind := flag.String("udp", "127.0.0.1:0", "UDP bind address for the dataplane")
	rpcBind := flag.String("rpc", "127.0.0.1:0", "TCP bind address for the control-plane agent")
	slots := flag.Int("slots", 65536, "key slots per stage (the paper's Tofino profile uses 64K)")
	workers := flag.Int("workers", 0, "dataplane ingest workers (0 = one per core, capped at 8)")
	sockets := flag.Int("sockets", 0, "SO_REUSEPORT ingest sockets sharing the port (0 = one per core, capped at 4; Linux only)")
	batch := flag.Int("batch", 0, "datagrams drained per ingest syscall (0 = 32)")
	monitor := flag.String("monitor", "", "health monitor: virtual=host:port — the switch emits heartbeats there and routes probe replies to it")
	heartbeat := flag.Duration("heartbeat", 100*time.Millisecond, "heartbeat cadence when -monitor is set")
	relayFlag := flag.String("relay", "", "push-watch relay ingest: virtual=host:port — every applied mutation this switch commits publishes one event frame there")
	debugAddr := flag.String("debug-addr", "", "HTTP bind for the metrics plane: /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof (empty = disabled)")
	var peers peerList
	flag.Var(&peers, "peer", "virtual=real UDP endpoint of a peer (repeatable), e.g. 10.0.0.2=127.0.0.1:9002")
	flag.Parse()

	if *addrFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	vaddr, err := packet.ParseAddr(*addrFlag)
	if err != nil {
		log.Fatalf("netchaind: %v", err)
	}
	cfg := swsim.Tofino()
	cfg.SlotsPerStage = *slots

	sw, err := core.NewSwitch(vaddr, cfg)
	if err != nil {
		log.Fatalf("netchaind: %v", err)
	}
	book := transport.NewAddressBook()
	for _, p := range peers {
		parts := strings.SplitN(p, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("netchaind: bad -peer %q (want virtual=host:port)", p)
		}
		va, err := packet.ParseAddr(parts[0])
		if err != nil {
			log.Fatalf("netchaind: peer %q: %v", p, err)
		}
		ep, err := net.ResolveUDPAddr("udp", parts[1])
		if err != nil {
			log.Fatalf("netchaind: peer %q: %v", p, err)
		}
		book.Set(va, ep)
	}

	node, err := transport.NewSwitchNode(sw, book, *udpBind,
		transport.WithIngestWorkers(*workers),
		transport.WithIngestSockets(*sockets),
		transport.WithRecvBatch(*batch))
	if err != nil {
		log.Fatalf("netchaind: %v", err)
	}
	rpcAddr, stopRPC, err := transport.ServeAgent(sw, *rpcBind)
	if err != nil {
		log.Fatalf("netchaind: %v", err)
	}
	hb := ""
	if *monitor != "" {
		parts := strings.SplitN(*monitor, "=", 2)
		if len(parts) != 2 {
			log.Fatal("netchaind: -monitor must be virtual=host:port")
		}
		mv, err := packet.ParseAddr(parts[0])
		if err != nil {
			log.Fatalf("netchaind: monitor %q: %v", *monitor, err)
		}
		mep, err := net.ResolveUDPAddr("udp", parts[1])
		if err != nil {
			log.Fatalf("netchaind: monitor %q: %v", *monitor, err)
		}
		book.Set(mv, mep) // probe replies route back through the book
		if err := node.StartHeartbeats(mv, *heartbeat); err != nil {
			log.Fatalf("netchaind: %v", err)
		}
		hb = fmt.Sprintf(", heartbeats to %v every %v", mv, *heartbeat)
	}
	ev := ""
	if *relayFlag != "" {
		parts := strings.SplitN(*relayFlag, "=", 2)
		if len(parts) != 2 {
			log.Fatal("netchaind: -relay must be virtual=host:port")
		}
		rv, err := packet.ParseAddr(parts[0])
		if err != nil {
			log.Fatalf("netchaind: relay %q: %v", *relayFlag, err)
		}
		rep, err := net.ResolveUDPAddr("udp", parts[1])
		if err != nil {
			log.Fatalf("netchaind: relay %q: %v", *relayFlag, err)
		}
		node.SetEventSink(rv, rep)
		ev = fmt.Sprintf(", events to %v (%v)", rv, rep)
	}
	dbg := ""
	if *debugAddr != "" {
		reg := telemetry.NewRegistry()
		node.RegisterMetrics(reg)
		srv, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatalf("netchaind: debug server: %v", err)
		}
		defer srv.Close()
		dbg = fmt.Sprintf(", metrics http://%s/metrics", srv.Addr)
	}
	fmt.Printf("netchaind %v: dataplane %v, agent %v, %d slots/stage%s%s%s\n",
		vaddr, node.Endpoint(), rpcAddr, *slots, hb, ev, dbg)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	stopRPC()
	node.Close()
}
