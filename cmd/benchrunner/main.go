// Command benchrunner regenerates the paper's evaluation: Table 1,
// Figures 9(a)–(f), 10(a)(b), 11, and the TLA+-style model check — each
// printed as the rows/series the paper reports, with a note of the
// published shape for comparison (EXPERIMENTS.md records both).
//
// Usage:
//
//	benchrunner -exp all            # everything, quick parameters
//	benchrunner -exp fig9c -full    # one experiment at paper-scale cost
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"netchain/internal/benchjson"
	"netchain/internal/experiments"
	"netchain/internal/mc"
)

func main() { os.Exit(realMain()) }

// realMain carries the exit code back through a normal return so the
// deferred profile writers (-cpuprofile/-memprofile) flush even when an
// experiment fails or the perf gate trips — the run where a profile is
// most wanted.
func realMain() (code int) {
	exp := flag.String("exp", "all", "experiment: table1|fig9a|fig9b|fig9c|fig9d|fig9e|fig9f|fig10a|fig10b|fig11|resize|pipeline|tla|bench|udpbench|read-scaling|hot-key|value-sweep|trace|mttr|watch|chaos|realchaos|placement|all")
	full := flag.Bool("full", false, "use longer windows / full parameter sweeps")
	windows := flag.String("windows", "1,4,16,64", "outstanding-window sweep for -exp pipeline (comma-separated)")
	window := flag.Int("window", 0, "client outstanding-query window for the fig9 experiments (0 = unbounded open loop)")
	jsonPath := flag.String("json", "", "write machine-readable -exp bench results to this file (BENCH.json)")
	baseline := flag.String("baseline", "", "compare -exp bench results against this baseline file; exit 1 on regression")
	compare := flag.String("compare", "", "with -baseline: also write a benchstat-style old-vs-new table to this file")
	gate := flag.Float64("gate", 0.20, "regression tolerance for -baseline (0.20 = 20%)")
	seed := flag.Int64("seed", 1, "deterministic seed for -exp chaos and -exp bench")
	schedule := flag.String("schedule", "full-nemesis", "nemesis schedule for -exp chaos ('all' runs every schedule)")
	autopilot := flag.Bool("autopilot", false, "run -exp chaos hands-free: faults are injected by the nemesis and repaired by the φ-accrual autopilot, never by manual controller calls")
	topology := flag.String("topology", "ring", "substrate for -exp chaos: ring (the Fig. 8 testbed), spine-leaf:SxL, or fattree:k")
	archive := flag.String("archive", "", "with -json: also archive the gated run as BENCH_<n>.json under this directory (perf trajectory across PRs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	flag.IntVar(&udpSockets, "udp-sockets", 0, "SO_REUSEPORT ingest sockets for the real-UDP scenarios (0 = auto)")
	flag.IntVar(&udpBatch, "udp-batch", 0, "datagrams per ingest syscall for the real-UDP scenarios (0 = 32)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	ran := false
	run := func(name string, fn func() error) {
		if code != 0 || (*exp != "all" && *exp != name) {
			return
		}
		ran = true
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			code = 1
			return
		}
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	// runOnly registers an experiment reachable only by name: the
	// standalone real-UDP scenario views are already executed (and gated)
	// inside "bench", so "all" must not run the same socket benches again.
	runOnly := func(name string, fn func() error) {
		if *exp == name {
			run(name, fn)
		}
	}

	tOpts := experiments.ThroughputOpts{ClientWindow: *window}
	if !*full {
		tOpts.StoreSize = 4000
		tOpts.Window = 40 * time.Millisecond
		tOpts.ZKWindow = 250 * time.Millisecond
	}

	run("table1", func() error {
		tab, err := experiments.MeasureTable1(400 * time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Println(tab.Format())
		return nil
	})
	run("fig9a", func() error { return printFig(experiments.Fig9a(tOpts)) })
	run("fig9b", func() error { return printFig(experiments.Fig9b(tOpts)) })
	run("fig9c", func() error { return printFig(experiments.Fig9c(tOpts)) })
	run("fig9d", func() error { return printFig(experiments.Fig9d(tOpts)) })
	run("fig9e", func() error { return printFig(experiments.Fig9e(tOpts)) })
	run("fig9f", func() error {
		o := experiments.Fig9fOpts{}
		if !*full {
			o.Samples = 2000
		}
		return printFig(experiments.Fig9f(o))
	})
	run("fig10a", func() error { return runFig10(1, *full) })
	run("fig10b", func() error { return runFig10(100, *full) })
	run("resize", func() error { return runResize(*full) })
	run("fig11", func() error {
		o := experiments.Fig11Opts{}
		if !*full {
			o.Clients = []int{1, 10, 50}
			o.NetChainWindow = 15 * time.Millisecond
			o.ZKWindow = time.Second
			o.ColdKeys = 1000
		}
		return printFig(experiments.Fig11(o))
	})
	run("pipeline", func() error {
		var ws []int
		for _, s := range strings.Split(*windows, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				return fmt.Errorf("bad -windows entry %q", s)
			}
			ws = append(ws, w)
		}
		pts, err := experiments.Fig9eWindows(tOpts, ws)
		if err != nil {
			return err
		}
		fmt.Println("client pipeline sweep (one client server, fixed offered load):")
		fmt.Printf("%8s %12s %10s %10s %12s\n", "window", "MQPS", "p50 µs", "p99 µs", "suppressed")
		for _, p := range pts {
			fmt.Printf("%8d %12.3f %10.2f %10.2f %12d\n", p.Window, p.QPS/1e6, p.P50us, p.P99us, p.Suppressed)
		}
		return nil
	})
	run("bench", func() error { return runBench(*seed, *jsonPath, *baseline, *compare, *archive, *gate) })
	runOnly("mttr", func() error {
		_, rows, err := experiments.MTTRBench(*seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatMTTR(rows))
		return nil
	})
	runOnly("watch", func() error {
		results, err := experiments.WatchScale(watchOpts(*full))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatWatchScale(results))
		return nil
	})
	runOnly("udpbench", func() error {
		results, err := experiments.UDPBench(udpOpts(*full))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatUDPBench(results))
		return nil
	})
	runOnly("read-scaling", func() error {
		results, err := experiments.ReadScaling(udpOpts(*full))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatUDPBench(results))
		return nil
	})
	runOnly("hot-key", func() error {
		results, err := experiments.HotKey(udpOpts(*full))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatUDPBench(results))
		return nil
	})
	runOnly("value-sweep", func() error {
		results, err := experiments.ValueSweep(udpOpts(*full))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatUDPBench(results))
		return nil
	})
	runOnly("trace", func() error {
		results, err := experiments.TraceBench(traceOpts(*full))
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTraceBench(results))
		return nil
	})
	run("chaos", func() error { return runChaos(*schedule, *seed, *autopilot, *topology) })
	// Reachable only by name: the wire twin boots live sockets and runs
	// on the wall clock, so "all" (the quick sim sweep) must not pay it.
	runOnly("realchaos", func() error { return runRealChaos(*schedule, *seed) })
	run("placement", func() error {
		r, err := experiments.RunPlacementScaling(experiments.PlacementOpts{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Println("placement scaling (client-affine workload, metered fabric links):")
		fmt.Print(experiments.FormatPlacement(r))
		fmt.Println()
		return nil
	})
	run("tla", func() error {
		for _, cfg := range []struct {
			name string
			mut  func(*mc.Bounds)
		}{
			{"default (drop/dup/reorder + 1 failure)", func(*mc.Bounds) {}},
			{"with recovery", func(b *mc.Bounds) { b.WithRecovery = true }},
			{"ablation: sequence numbers OFF", func(b *mc.Bounds) {
				b.DisableSeqCheck = true
				b.MaxFails = 0
			}},
		} {
			b := mc.DefaultBounds()
			cfg.mut(&b)
			ck, err := mc.New(b)
			if err != nil {
				return err
			}
			res := ck.Run()
			fmt.Printf("model check [%s]: %d states — ", cfg.name, res.States)
			if res.Violation == nil {
				fmt.Println("Consistency + UpdatePropagation HOLD")
			} else {
				fmt.Printf("VIOLATION: %s\n  trace: %s\n", res.Reason, res.Violation)
			}
		}
		fmt.Println()
		return nil
	})
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; see -exp usage\n", *exp)
		return 2
	}
	return code
}

func printFig(f *experiments.Figure, err error) error {
	if err != nil {
		return err
	}
	fmt.Println(f.Format())
	return nil
}

func runFig10(vgroups int, full bool) error {
	o := experiments.Fig10Opts{VGroups: vgroups}
	if !full {
		o.Scale = 20000
		o.StoreSize = 2000
		o.Duration = 60 * time.Second
		o.FailAt = 10 * time.Second
		o.RecoverAt = 20 * time.Second
		o.Bucket = time.Second
	}
	res, err := experiments.Fig10(o)
	if err != nil {
		return err
	}
	fmt.Println(res.Figure.Format())
	fmt.Printf("failover done at t=%.1fs; recovery done at t=%.1fs; groups recovered: %d\n",
		res.FailoverDone.Seconds(), res.RecoveryDone.Seconds(), res.GroupsRecovered)
	fmt.Printf("baseline %.2f MQPS; minimum during recovery %.2f MQPS (%.1f%% of baseline)\n",
		res.BaselineRate/1e6, res.MinRateDuringRecovery/1e6,
		100*res.MinRateDuringRecovery/res.BaselineRate)
	return nil
}

// udpSockets/udpBatch carry the -udp-sockets/-udp-batch flags into every
// real-UDP scenario construction site.
var udpSockets, udpBatch int

// udpOpts sizes the real-UDP scenarios: quick points for CI, longer
// windows under -full.
func udpOpts(full bool) experiments.UDPBenchOpts {
	o := experiments.UDPBenchOpts{Sockets: udpSockets, Batch: udpBatch}
	if full {
		o.Duration = 2 * time.Second
	}
	return o
}

// traceOpts sizes the latency-breakdown experiment: quick windows for
// CI, longer measurement and more A/B windows under -full.
func traceOpts(full bool) experiments.TraceBenchOpts {
	o := experiments.TraceBenchOpts{}
	if full {
		o.Duration = 2 * time.Second
		o.ABWindows = 5
	}
	return o
}

// watchOpts sizes the watch-scale sweep: the acceptance population (10⁴
// and 10⁵ subscribers) either way; -full publishes more events per point.
func watchOpts(full bool) experiments.WatchScaleOpts {
	o := experiments.WatchScaleOpts{}
	if full {
		o.Events = 8192
	}
	return o
}

// runBench executes the CI perf-gate scenarios — the deterministic
// simulated trio, the wall-clock real-UDP scenarios (read-scaling,
// hot-key, value-sweep), the watch-scale fan-out sweep (push-watch
// delivery at 10⁴/10⁵ subscribers), and the MTTR/availability scenarios
// (autopilot detection + repair latency under every nemesis schedule) —
// optionally
// writing the machine-readable artifact, an old-vs-new comparison table,
// an archived BENCH_<n>.json snapshot, and enforcing the regression gate
// against a committed baseline.
func runBench(seed int64, jsonPath, baselinePath, comparePath, archiveDir string, gate float64) error {
	results, err := experiments.BenchSmoke(experiments.BenchOpts{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatBench(results))
	udp, err := experiments.UDPBench(udpOpts(false))
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatUDPBench(udp))
	results = append(results, udp...)
	mttr, rows, err := experiments.MTTRBench(seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMTTR(rows))
	results = append(results, mttr...)
	placed, err := experiments.RunPlacementScaling(experiments.PlacementOpts{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatPlacement(placed))
	results = append(results, experiments.PlacementBenchRows(placed)...)
	ws, err := experiments.WatchScale(watchOpts(false))
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatWatchScale(ws))
	results = append(results, ws...)
	tr, err := experiments.TraceBench(traceOpts(false))
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTraceBench(tr))
	results = append(results, tr...)
	cur := benchjson.File{
		Note: fmt.Sprintf("benchrunner -exp bench -seed %d; simulated-time scenarios are "+
			"deterministic across machines; scenarios carrying a tol field are real-UDP "+
			"wall-clock numbers (machine-dependent, gated loosely)", seed),
		Results: results,
	}
	if jsonPath != "" {
		if err := benchjson.Write(jsonPath, cur); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if archiveDir != "" {
		path, err := benchjson.Archive(archiveDir, cur)
		if err != nil {
			return err
		}
		fmt.Printf("archived %s\n", path)
	}
	if baselinePath != "" {
		base, err := benchjson.Load(baselinePath)
		if err != nil {
			return err
		}
		table := benchjson.FormatComparison(base, cur)
		fmt.Print(table)
		if comparePath != "" {
			if err := os.WriteFile(comparePath, []byte(table), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", comparePath)
		}
		violations := benchjson.Compare(base, cur, gate)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "PERF REGRESSION: %s\n", v)
			}
			return fmt.Errorf("%d perf regression(s) vs %s", len(violations), baselinePath)
		}
		fmt.Printf("perf gate vs %s: PASS (base tolerance %.0f%%)\n", baselinePath, 100*gate)
	}
	return nil
}

// runChaos executes nemesis schedules and fails on a non-linearizable
// history, dumping it to a file so CI can upload the repro. With
// autopilot, every repair must come from the detector — the run also
// fails if the fail-stop schedule ends with an unrepaired chain or a
// repair-free schedule suffers a false eviction.
func runChaos(schedule string, seed int64, autopilot bool, topology string) error {
	names := []string{schedule}
	if schedule == "all" {
		names = experiments.ChaosScheduleNames()
	}
	for _, name := range names {
		res, err := experiments.RunChaos(experiments.ChaosOpts{
			Schedule: name, Seed: seed, Autopilot: autopilot, Topology: topology,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		if !res.Lin.OK {
			dump := fmt.Sprintf("chaos-failure-%s-seed%d.txt", name, seed)
			if werr := os.WriteFile(dump, []byte(res.DumpHistory()), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "could not dump history: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "history dumped to %s\n", dump)
			}
			return fmt.Errorf("chaos %s seed %d: history not linearizable (key %s): %s",
				name, seed, res.Lin.Key, res.Lin.Reason)
		}
		if autopilot {
			if res.FailStopInjected && !res.ChainsRepaired {
				return fmt.Errorf("chaos %s seed %d: autopilot left the chain unrepaired", name, seed)
			}
			if !res.FailStopInjected && res.Failovers > 0 {
				return fmt.Errorf("chaos %s seed %d: %d false fail-stop evictions", name, seed, res.Failovers)
			}
		}
	}
	return nil
}

// runRealChaos executes nemesis schedules against the live-UDP cluster
// (see experiments.RunRealChaos). The run fails on a non-linearizable
// history (dumped for CI upload), an unrepaired chain after a schedule
// fail-stop, a false eviction, or a diverged push-watch stream.
func runRealChaos(schedule string, seed int64) error {
	names := []string{schedule}
	if schedule == "all" {
		names = experiments.ChaosScheduleNames()
	}
	for _, name := range names {
		res, err := experiments.RunRealChaos(experiments.RealChaosOpts{
			Schedule: name, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		if !res.Lin.OK {
			dump := fmt.Sprintf("realchaos-failure-%s-seed%d.txt", name, seed)
			if werr := os.WriteFile(dump, []byte(res.DumpHistory()), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "could not dump history: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "history dumped to %s\n", dump)
			}
			return fmt.Errorf("realchaos %s seed %d: history not linearizable (key %s): %s",
				name, seed, res.Lin.Key, res.Lin.Reason)
		}
		if res.FailStopInjected && !res.ChainsRepaired {
			return fmt.Errorf("realchaos %s seed %d: autopilot left the chain unrepaired", name, seed)
		}
		if res.FalseEvictions > 0 {
			return fmt.Errorf("realchaos %s seed %d: %d false fail-stop evictions", name, seed, res.FalseEvictions)
		}
		if !res.WatchConverged {
			return fmt.Errorf("realchaos %s seed %d: push-watch stream did not converge", name, seed)
		}
	}
	return nil
}

func runResize(full bool) error {
	o := experiments.ResizeOpts{}
	if !full {
		o.Scale = 20000
		o.StoreSize = 1000
		o.Duration = 20 * time.Second
		o.AddAt = 4 * time.Second
		o.RemoveAt = 12 * time.Second
	}
	res, err := experiments.RunResize(o)
	if err != nil {
		return err
	}
	fmt.Println(res.Figure.Format())
	fmt.Printf("scale-out done at t=%.1fs (%d groups); scale-in done at t=%.1fs (%d groups)\n",
		res.ScaleOutDone.Seconds(), res.GroupsMigratedOut,
		res.ScaleInDone.Seconds(), res.GroupsMigratedIn)
	fmt.Printf("reads: baseline %.2f MQPS, worst bucket during resize %.2f MQPS (%.1f%%); "+
		"read p99 %.1fµs quiet vs %.1fµs during migration\n",
		res.BaselineReadRate/1e6, res.MinReadRateDuring/1e6,
		100*res.MinReadRateDuring/res.BaselineReadRate,
		float64(res.BaselineReadP99.Nanoseconds())/1e3,
		float64(res.ResizeReadP99.Nanoseconds())/1e3)
	fmt.Printf("writes bounced by per-group migration freeze: %d\n", res.WritesUnavailable)
	return nil
}
