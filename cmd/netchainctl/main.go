// Command netchainctl is the NetChain command-line client: it resolves
// routes from the controller, then issues queries over UDP through a
// gateway switch (the client agent of §3, as a tool).
//
// Examples:
//
//	netchainctl -controller 127.0.0.1:9200 -gateway 10.0.0.1=127.0.0.1:9001 insert cfg/x
//	netchainctl ... put cfg/x '{"timeout": 30}'
//	netchainctl ... get cfg/x
//	netchainctl ... lock  locks/a 42
//	netchainctl ... unlock locks/a 42
//	netchainctl ... del cfg/x
//
// Streaming watches (needs the controller's relay tier, see
// netchain-controller -relay-udp):
//
//	netchainctl ... -relay 127.0.0.1:9401 watch cfg/x cfg/y
//
// Elastic membership and health (no -gateway needed; controller only):
//
//	netchainctl -controller 127.0.0.1:9200 add-switch 10.0.0.5=127.0.0.1:9105
//	netchainctl -controller 127.0.0.1:9200 remove-switch 10.0.0.2
//	netchainctl -controller 127.0.0.1:9200 cluster health
//
// Live metrics dashboard (scrapes the daemons' -debug-addr endpoints):
//
//	netchainctl -interval 1s top 127.0.0.1:9901 127.0.0.1:9902 127.0.0.1:9990
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"net/rpc"

	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/relay"
	"netchain/internal/transport"
	"netchain/internal/watch"
)

func main() {
	ctlAddr := flag.String("controller", "127.0.0.1:9200", "controller RPC address")
	gateway := flag.String("gateway", "", "gateway switch: virtual=real UDP endpoint (required)")
	clientAddr := flag.String("client", "10.1.0.1", "this client's virtual address")
	bind := flag.String("bind", ":0", "local UDP bind address; switches must map the client's virtual address to it")
	relayCtl := flag.String("relay", "", "relay control endpoint host:port (for the watch verb)")
	relayMcast := flag.Bool("relay-multicast", false, "receive watch events over multicast groups instead of a unicast lease")
	topInterval := flag.Duration("interval", time.Second, "refresh interval for the top verb")
	topSamples := flag.Int("samples", 0, "render this many frames then exit (top verb; 0 = until interrupted)")
	flag.Parse()
	args := flag.Args()

	// The top verb needs neither controller nor gateway — just the
	// -debug-addr metrics endpoints of the daemons to watch.
	if len(args) >= 1 && args[0] == "top" {
		if err := topLoop(args[1:], *topInterval, *topSamples); err != nil {
			log.Fatalf("top: %v", err)
		}
		return
	}
	if len(args) >= 1 && args[0] == "metrics-check" {
		if err := metricsCheck(args[1:]); err != nil {
			log.Fatalf("metrics-check: %v", err)
		}
		return
	}

	// Membership and health verbs only need the controller; handle them
	// before the UDP client plumbing.
	if len(args) >= 1 && (args[0] == "add-switch" || args[0] == "remove-switch") {
		if len(args) < 2 {
			log.Fatalf("%s needs a switch argument", args[0])
		}
		if err := resizeViaController(*ctlAddr, args[0], args[1]); err != nil {
			log.Fatalf("%s: %v", args[0], err)
		}
		fmt.Println("ok")
		return
	}
	if len(args) >= 2 && args[0] == "cluster" && args[1] == "health" {
		if err := clusterHealth(*ctlAddr); err != nil {
			log.Fatalf("cluster health: %v", err)
		}
		return
	}

	if *gateway == "" || len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: netchainctl -gateway V=HOST:PORT [flags] {get|put|del|insert|lock|unlock} KEY [VALUE|OWNER]")
		fmt.Fprintln(os.Stderr, "       netchainctl -controller HOST:PORT {add-switch V=AGENTHOST:PORT | remove-switch V}")
		fmt.Fprintln(os.Stderr, "       netchainctl -controller HOST:PORT cluster health")
		fmt.Fprintln(os.Stderr, "       netchainctl [-interval 1s] [-samples N] top DEBUGADDR...")
		os.Exit(2)
	}

	parts := strings.SplitN(*gateway, "=", 2)
	if len(parts) != 2 {
		log.Fatal("netchainctl: -gateway must be virtual=host:port")
	}
	gwVirt, err := packet.ParseAddr(parts[0])
	if err != nil {
		log.Fatalf("netchainctl: %v", err)
	}
	gwReal, err := net.ResolveUDPAddr("udp", parts[1])
	if err != nil {
		log.Fatalf("netchainctl: %v", err)
	}
	myAddr, err := packet.ParseAddr(*clientAddr)
	if err != nil {
		log.Fatalf("netchainctl: %v", err)
	}

	book := transport.NewAddressBook()
	book.Set(gwVirt, gwReal)
	dir, closeDir, err := transport.DialDirectory(*ctlAddr)
	if err != nil {
		log.Fatalf("netchainctl: %v", err)
	}
	defer closeDir()
	client, err := transport.NewClient(book, transport.ClientConfig{
		Addr: myAddr, Gateway: gwVirt, Bind: *bind,
	})
	if err != nil {
		log.Fatalf("netchainctl: %v", err)
	}
	defer client.Close()
	ops := &transport.Ops{Client: client, Dir: dir}

	cmd, key := args[0], kv.KeyFromString(args[1])
	switch cmd {
	case "watch":
		var keys []kv.Key
		for _, a := range args[1:] {
			keys = append(keys, kv.KeyFromString(a))
		}
		if err := watchKeys(ops, *relayCtl, *relayMcast, keys); err != nil {
			log.Fatalf("watch: %v", err)
		}
	case "get":
		v, ver, err := ops.Read(key)
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		fmt.Printf("%s (version %v)\n", v, ver)
	case "put":
		if len(args) < 3 {
			log.Fatal("put needs a value")
		}
		ver, err := ops.Write(key, kv.Value(args[2]))
		if err != nil {
			log.Fatalf("put: %v", err)
		}
		fmt.Printf("ok (version %v)\n", ver)
	case "del":
		if err := ops.Delete(key); err != nil {
			log.Fatalf("del: %v", err)
		}
		fmt.Println("ok")
	case "insert":
		// Insert goes through the controller (§4.1): allocate the slot,
		// then the key is writable.
		rt, err := insertViaController(*ctlAddr, key)
		if err != nil {
			log.Fatalf("insert: %v", err)
		}
		fmt.Printf("ok (chain %v)\n", rt)
	case "lock", "unlock":
		if len(args) < 3 {
			log.Fatalf("%s needs an owner id", cmd)
		}
		owner, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil || owner == 0 {
			log.Fatalf("%s: owner must be a non-zero integer", cmd)
		}
		var ok bool
		if cmd == "lock" {
			ok, err = ops.Acquire(key, owner)
		} else {
			ok, err = ops.Release(key, owner)
		}
		if err != nil {
			log.Fatalf("%s: %v", cmd, err)
		}
		fmt.Println(map[bool]string{true: "ok", false: "denied"}[ok])
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// resizeViaController drives the elastic membership verbs. add-switch
// takes "virtual=agentHost:port" (the controller dials the new switch's
// agent); remove-switch takes just the virtual address and blocks until
// the drain completes.
func resizeViaController(addr, verb, spec string) error {
	var args transport.ResizeArgs
	if verb == "add-switch" {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("add-switch wants virtual=agentHost:port, got %q", spec)
		}
		va, err := packet.ParseAddr(parts[0])
		if err != nil {
			return err
		}
		args = transport.ResizeArgs{Switch: va, AgentAddr: parts[1]}
	} else {
		va, err := packet.ParseAddr(spec)
		if err != nil {
			return err
		}
		args = transport.ResizeArgs{Switch: va}
	}
	c, err := dialRPC(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	var rep transport.ResizeReply
	method := map[string]string{"add-switch": "Controller.AddSwitch", "remove-switch": "Controller.RemoveSwitch"}[verb]
	if err := c.Call(method, args, &rep); err != nil {
		return err
	}
	fmt.Printf("migrated %d virtual groups\n", rep.GroupsMigrated)
	return nil
}

// clusterHealth renders the controller's detector snapshot and autopilot
// repair history (requires the controller to run with -autopilot).
func clusterHealth(addr string) error {
	c, err := dialRPC(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	var rep transport.HealthReport
	if err := c.Call("Controller.ClusterHealth", transport.None{}, &rep); err != nil {
		return err
	}
	fmt.Printf("%-12s %-9s %7s %6s %10s %10s %7s %7s %7s %9s %8s\n",
		"switch", "verdict", "phi", "beats", "rtt µs", "base µs", "loss", "drops", "badpkt", "rcvbuf", "demoted")
	for _, s := range rep.Switches {
		rcvbuf := "?"
		if s.RcvBufBytes > 0 {
			rcvbuf = fmt.Sprintf("%dK", s.RcvBufBytes/1024)
		}
		fmt.Printf("%-12v %-9s %7.2f %6d %10.1f %10.1f %7.3f %7.3f %7d %9s %8v\n",
			s.Addr, s.Verdict, s.Phi, s.Heartbeats,
			s.RTTEWMAus, s.RTTBaselineUs, s.ProbeLossEWMA, s.DropRateEWMA,
			s.DecodeErrs, rcvbuf, s.Demoted)
	}
	if len(rep.Repairs) == 0 {
		fmt.Println("repair history: empty")
		return nil
	}
	fmt.Println("repair history:")
	for _, r := range rep.Repairs {
		detail := ""
		if r.Detail != "" {
			detail = " (" + r.Detail + ")"
		}
		fmt.Printf("  t=%-12v %-13s %v%s\n", r.At, r.Action, r.Switch, detail)
	}
	return nil
}

func insertViaController(addr string, k kv.Key) ([]packet.Addr, error) {
	c, err := dialRPC(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var rep transport.RouteReply
	if err := c.Call("Controller.Insert", k, &rep); err != nil {
		return nil, err
	}
	return rep.Hops, nil
}

func dialRPC(addr string) (*rpc.Client, error) { return rpc.Dial("tcp", addr) }

// watchKeys streams push events for keys to stdout until SIGINT: it
// subscribes the watched virtual groups at the relay, resynchronizes on
// stream gaps with linearizable reads, and runs a slow anti-entropy sweep
// to bound the staleness of a lost final event.
func watchKeys(ops *transport.Ops, relayCtl string, mcast bool, keys []kv.Key) error {
	if relayCtl == "" {
		return fmt.Errorf("the watch verb needs -relay (the controller prints the control endpoint)")
	}
	ctlEp, err := net.ResolveUDPAddr("udp", relayCtl)
	if err != nil {
		return err
	}
	sub := watch.NewSub(keys, func(k kv.Key) uint16 {
		rt, derr := ops.Dir(k)
		if derr != nil {
			return 0
		}
		return rt.Group
	}, 256)
	defer sub.Close()
	sig := make(chan struct{}, 1)
	mode := relay.ModeUnicast
	if mcast {
		mode = relay.ModeMulticast
	}
	conn, err := relay.Subscribe(mode, ctlEp, sub.Groups(), func(ev query.Event) {
		if sub.ApplyEvent(ev) {
			select {
			case sig <- struct{}{}:
			default:
			}
		}
	})
	if err != nil {
		return err
	}
	defer conn.Close()

	readDirty := func() {
		for _, k := range sub.TakeDirty() {
			v, ver, rerr := ops.Read(k)
			switch {
			case rerr == nil:
				sub.ApplyRead(k, true, v, ver)
			case errors.Is(rerr, kv.ErrNotFound):
				sub.ApplyRead(k, false, nil, ver)
			default:
				sub.MarkDirty(k)
			}
		}
	}
	readDirty() // initial state fetch

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	sweep := time.NewTicker(10 * time.Second)
	defer sweep.Stop()
	for {
		select {
		case ev := <-sub.Events():
			switch ev.Type {
			case watch.Deleted:
				fmt.Printf("%-8s %s (version %v)\n", "DELETED", ev.Key, ev.Version)
			case watch.Created:
				fmt.Printf("%-8s %s = %s (version %v)\n", "CREATED", ev.Key, ev.Value, ev.Version)
			default:
				fmt.Printf("%-8s %s = %s (version %v)\n", "UPDATED", ev.Key, ev.Value, ev.Version)
			}
		case <-sig:
			readDirty()
		case <-tick.C:
			readDirty()
		case <-sweep.C:
			sub.MarkDirty()
			readDirty()
		case <-stop:
			return nil
		}
	}
}
