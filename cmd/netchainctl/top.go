package main

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"netchain/internal/telemetry"
)

// topLoop is the `netchainctl top` verb: it scrapes the /metrics endpoint
// of every listed -debug-addr each interval and renders a live per-switch
// dashboard — ops/s and drop/error rates from counter deltas, hop latency
// percentiles and queue depths straight from the gauges. Endpoints that
// expose controller or relay series get their own summary lines.
func topLoop(endpoints []string, interval time.Duration, samples int) error {
	if len(endpoints) == 0 {
		return fmt.Errorf("top needs at least one -debug-addr endpoint (host:port)")
	}
	if interval <= 0 {
		interval = time.Second
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	prev := make(map[string]map[string]float64, len(endpoints))
	prevAt := make(map[string]time.Time, len(endpoints))
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for n := 0; samples <= 0 || n < samples; n++ {
		if n > 0 {
			select {
			case <-stop:
				return nil
			case <-tick.C:
			}
		}
		renderTop(endpoints, prev, prevAt)
	}
	return nil
}

// metricsCheck is the `netchainctl metrics-check` verb, built for the CI
// metrics smoke: scrape each endpoint's /metrics, fail if the Prometheus
// text doesn't parse, and — for endpoints exposing switch series — fail
// if any of the required node series is missing.
func metricsCheck(endpoints []string) error {
	if len(endpoints) == 0 {
		return fmt.Errorf("metrics-check needs at least one -debug-addr endpoint (host:port)")
	}
	for _, ep := range endpoints {
		m, err := scrapeMetrics(ep)
		if err != nil {
			return fmt.Errorf("%s: %w", ep, err)
		}
		if _, isNode := m[telemetry.SwitchProcessed]; isNode {
			var missing []string
			for _, name := range telemetry.RequiredNodeSeries {
				if _, ok := m[name]; !ok {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				return fmt.Errorf("%s: required series missing: %v", ep, missing)
			}
		}
		fmt.Printf("%s: ok (%d series)\n", ep, len(m))
	}
	return nil
}

func scrapeMetrics(ep string) (map[string]float64, error) {
	c := http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(fmt.Sprintf("http://%s/metrics", ep))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return telemetry.ParseProm(resp.Body)
}

func renderTop(endpoints []string, prev map[string]map[string]float64, prevAt map[string]time.Time) {
	fmt.Printf("\n%s\n", time.Now().Format("15:04:05"))
	fmt.Printf("%-22s %9s %9s %8s %8s %6s %8s %8s\n",
		"endpoint", "ops/s", "reads/s", "p50µs", "p99µs", "queue", "drops/s", "errs/s")
	var extra []string
	for _, ep := range endpoints {
		m, err := scrapeMetrics(ep)
		if err != nil {
			fmt.Printf("%-22s %s\n", ep, err)
			continue
		}
		now := time.Now()
		dt := 0.0
		if t0, ok := prevAt[ep]; ok {
			dt = now.Sub(t0).Seconds()
		}
		rate := func(name string) float64 {
			if dt <= 0 || prev[ep] == nil {
				return 0
			}
			d := m[name] - prev[ep][name]
			if d < 0 {
				return 0 // restarted process: counter reset
			}
			return d / dt
		}
		if _, isNode := m[telemetry.SwitchProcessed]; isNode {
			drops := rate(telemetry.SwitchRuleDrops)
			errs := rate(telemetry.NodeReadErrors) + rate(telemetry.NodeDecodeErrors) +
				rate(telemetry.NodeTruncatedBatches)
			fmt.Printf("%-22s %9.0f %9.0f %8.1f %8.1f %6.0f %8.1f %8.1f\n",
				ep,
				rate(telemetry.SwitchProcessed),
				rate(telemetry.SwitchReads),
				m[telemetry.NodeProcNs+"_p50"]/1e3,
				m[telemetry.NodeProcNs+"_p99"]/1e3,
				m[telemetry.NodeQueueDepth],
				drops, errs)
		}
		if v, ok := m[telemetry.ControllerSwitches]; ok {
			extra = append(extra, fmt.Sprintf("controller %s: %.0f switches, %.0f repairs, %.0f suspects, %.1f probes/s",
				ep, v, m[telemetry.ControllerRepairs], m[telemetry.MonitorSuspects],
				rate(telemetry.MonitorProbes)))
		}
		if _, ok := m[telemetry.RelayEventsOut]; ok {
			extra = append(extra, fmt.Sprintf("relay %s: %.0f events/s out, %.0f dgrams/s, %.0f subscribers, %.1f dup/s",
				ep, rate(telemetry.RelayEventsOut), rate(telemetry.RelayEgressDatagrams),
				m[telemetry.RelaySubscribers], rate(telemetry.RelayEventsDup)))
		}
		prev[ep] = m
		prevAt[ep] = now
	}
	sort.Strings(extra)
	for _, line := range extra {
		fmt.Println(line)
	}
}
