// Command netchain-controller runs the NetChain control plane (§5): it
// owns the consistent-hash ring, allocates keys on chains (Insert),
// serves route lookups to clients, and — on demand via its admin RPC —
// performs fast failover and failure recovery.
//
// Example:
//
//	netchain-controller -rpc 127.0.0.1:9200 \
//	  -switch 10.0.0.1=127.0.0.1:9101 -switch 10.0.0.2=127.0.0.1:9102 \
//	  -switch 10.0.0.3=127.0.0.1:9103 -spare 10.0.0.4=127.0.0.1:9104
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"netchain/internal/controller"
	"netchain/internal/health"
	"netchain/internal/packet"
	"netchain/internal/relay"
	"netchain/internal/ring"
	"netchain/internal/telemetry"
	"netchain/internal/transport"
)

type switchList []string

func (p *switchList) String() string { return strings.Join(*p, ",") }
func (p *switchList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func parseSwitch(spec string) (packet.Addr, transport.RPCAgent, error) {
	parts := strings.SplitN(spec, "=", 2)
	if len(parts) != 2 {
		return 0, transport.RPCAgent{}, fmt.Errorf("bad switch spec %q (want virtual=host:port)", spec)
	}
	va, err := packet.ParseAddr(parts[0])
	if err != nil {
		return 0, transport.RPCAgent{}, err
	}
	agent, err := transport.DialAgent(parts[1])
	if err != nil {
		return 0, transport.RPCAgent{}, err
	}
	return va, agent, nil
}

func main() {
	rpcBind := flag.String("rpc", "127.0.0.1:9200", "TCP bind address for the client-facing RPC service")
	replicas := flag.Int("replicas", 3, "chain length f+1")
	vnodes := flag.Int("vnodes", 100, "virtual nodes (groups) per switch")
	autopilot := flag.Bool("autopilot", false, "self-healing: φ-accrual failure detection over switch heartbeats + autonomous failover/recovery/demotion")
	healthBind := flag.String("health-udp", "127.0.0.1:9300", "UDP bind for the health monitor (switch heartbeats + probe echoes); netchaind -monitor points here")
	monitorVaddr := flag.String("monitor-vaddr", "10.255.0.1", "virtual NetChain address of the health monitor")
	heartbeat := flag.Duration("heartbeat", 100*time.Millisecond, "expected heartbeat cadence (must match netchaind -heartbeat)")
	repairBudget := flag.Int("repair-budget", 4, "max data-moving repairs (recover/demote/restore) per budget window")
	relayBind := flag.String("relay-udp", "", "UDP bind for the push-watch relay tier (empty = relay off); netchaind -relay points at the printed ingest endpoint, netchainctl watch at the control endpoint")
	relayVaddr := flag.String("relay-vaddr", "10.255.0.2", "virtual NetChain address of the relay")
	relayMcast := flag.Bool("relay-multicast", false, "fan events out over per-group UDP multicast instead of unicast leases (needs multicast routing to subscribers)")
	debugAddr := flag.String("debug-addr", "", "HTTP bind for the metrics plane: /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof (empty = disabled)")
	var members, spares switchList
	flag.Var(&members, "switch", "ring member: virtual=agent host:port (repeatable)")
	flag.Var(&spares, "spare", "spare switch: virtual=agent host:port (repeatable); the autopilot recovers failed switches onto these")
	flag.Parse()

	if len(members) < *replicas {
		fmt.Fprintf(os.Stderr, "need at least %d -switch members\n", *replicas)
		os.Exit(2)
	}
	// The agent registry is mutable at runtime: the add-switch admin verb
	// registers new switches while the controller is live.
	var agentMu sync.RWMutex
	agents := map[packet.Addr]transport.RPCAgent{}
	var memberAddrs, spareAddrs []packet.Addr
	for _, spec := range members {
		va, ag, err := parseSwitch(spec)
		if err != nil {
			log.Fatalf("netchain-controller: %v", err)
		}
		agents[va] = ag
		memberAddrs = append(memberAddrs, va)
	}
	for _, spec := range spares {
		va, ag, err := parseSwitch(spec)
		if err != nil {
			log.Fatalf("netchain-controller: %v", err)
		}
		agents[va] = ag
		spareAddrs = append(spareAddrs, va)
	}

	r, err := ring.New(ring.Config{
		VNodesPerSwitch: *vnodes, Replicas: *replicas, Seed: 0x6e63,
	}, memberAddrs)
	if err != nil {
		log.Fatalf("netchain-controller: %v", err)
	}
	cfg := controller.DefaultConfig()
	cfg.SyncPerItem = 0 // real RPC takes real time
	ctl, err := controller.New(cfg, r, controller.WallClock{},
		func(a packet.Addr) (controller.Agent, bool) {
			agentMu.RLock()
			defer agentMu.RUnlock()
			ag, ok := agents[a]
			return ag, ok
		},
		func(failed packet.Addr) []packet.Addr {
			// On a flat deployment every live switch is programmed as a
			// "neighbor" — a safe superset of the physical neighbor set.
			agentMu.RLock()
			defer agentMu.RUnlock()
			var out []packet.Addr
			for a := range agents {
				if a != failed {
					out = append(out, a)
				}
			}
			return out
		})
	if err != nil {
		log.Fatalf("netchain-controller: %v", err)
	}

	register := func(sw packet.Addr, agentAddr string) error {
		ag, err := transport.DialAgent(agentAddr)
		if err != nil {
			return err
		}
		agentMu.Lock()
		agents[sw] = ag
		agentMu.Unlock()
		return nil
	}

	// Metrics plane: components register into one registry as they come
	// up; -debug-addr exposes it (plus expvar and pprof) over HTTP.
	reg := telemetry.NewRegistry()
	var ap *controller.Autopilot

	// Self-healing: health monitor (heartbeats in, probes out), φ-accrual
	// detector, and the reconcile loop that repairs convicted switches.
	svc := &transport.ControllerService{Ctl: ctl, Register: register}
	apLine := ""
	if *autopilot {
		mv, err := packet.ParseAddr(*monitorVaddr)
		if err != nil {
			log.Fatalf("netchain-controller: -monitor-vaddr: %v", err)
		}
		det := health.NewDetector(health.Defaults(*heartbeat))
		mon, err := health.NewMonitor(*healthBind, mv, det)
		if err != nil {
			log.Fatalf("netchain-controller: %v", err)
		}
		defer mon.Close()
		// Track every known switch up front so one that dies (or was
		// misconfigured) before its first heartbeat still accrues
		// suspicion from silence and gets repaired.
		for _, sw := range memberAddrs {
			det.Track(sw, mon.Now())
		}
		for _, sw := range spareAddrs {
			det.Track(sw, mon.Now())
		}
		mon.StartProbes(2*(*heartbeat), 8*(*heartbeat))
		mon.RegisterMetrics(reg)
		ap = controller.NewAutopilot(ctl, det, controller.WallClock{}, mon.Now,
			controller.AutopilotConfig{
				Interval:     *heartbeat,
				Spares:       spareAddrs,
				RepairBudget: *repairBudget,
			})
		ap.Start()
		svc.Health = func() transport.HealthReport {
			return transport.BuildHealthReport(det, ap, mon.Now())
		}
		// A drained switch powering off is retirement, not a failure:
		// stop watching it. Re-adding one resumes the watch.
		svc.Unregister = mon.Forget
		baseRegister := register
		register = func(sw packet.Addr, agentAddr string) error {
			if err := baseRegister(sw, agentAddr); err != nil {
				return err
			}
			mon.Watch(sw)
			det.Track(sw, mon.Now())
			return nil
		}
		svc.Register = register
		apLine = fmt.Sprintf(", autopilot on (health %v, %d spares)",
			mon.Endpoint(), len(spareAddrs))
	}

	// Push-watch relay tier: tails publish one event per applied mutation
	// to the ingest endpoint; subscribers lease (or multicast-join) streams
	// via the control endpoint.
	relayLine := ""
	if *relayBind != "" {
		rv, err := packet.ParseAddr(*relayVaddr)
		if err != nil {
			log.Fatalf("netchain-controller: -relay-vaddr: %v", err)
		}
		mode := relay.ModeUnicast
		if *relayMcast {
			mode = relay.ModeMulticast
		}
		rs, err := relay.Start(relay.Config{Bind: *relayBind, Addr: rv, Mode: mode})
		if err != nil {
			log.Fatalf("netchain-controller: %v", err)
		}
		defer rs.Close()
		rs.RegisterMetrics(reg)
		relayLine = fmt.Sprintf(", relay %s ingest %v control %v",
			rs.Mode(), rs.IngestEndpoint(), rs.ControlEndpoint())
	}

	dbgLine := ""
	if *debugAddr != "" {
		controller.RegisterMetrics(reg, ctl, ap)
		srv, err := telemetry.Serve(*debugAddr, reg)
		if err != nil {
			log.Fatalf("netchain-controller: debug server: %v", err)
		}
		defer srv.Close()
		dbgLine = fmt.Sprintf(", metrics http://%s/metrics", srv.Addr)
	}

	addr, stop, err := transport.ServeControllerService(svc, *rpcBind)
	if err != nil {
		log.Fatalf("netchain-controller: %v", err)
	}
	fmt.Printf("netchain-controller: rpc %v, %d members, %d groups, replicas=%d%s%s%s\n",
		addr, len(memberAddrs), r.Groups(), *replicas, apLine, relayLine, dbgLine)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	stop()
}
