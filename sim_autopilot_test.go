package netchain

import (
	"testing"
	"time"

	"netchain/internal/controller"
	"netchain/internal/health"
)

// TestSimClusterSelfHeals drives the public self-healing surface: enable
// the autopilot, kill a chain switch with NO controller notification, and
// watch the cluster detect the failure, fail over, and recover onto the
// spare — then keep serving reads and writes correctly.
func TestSimClusterSelfHeals(t *testing.T) {
	c, err := NewSimCluster(SimConfig{Scale: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableAutopilot(); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{42}
	if err := c.Insert(key); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(key, Value{1}); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Millisecond) // detector warmup

	snap := c.HealthSnapshot()
	if len(snap) != 4 {
		t.Fatalf("health snapshot covers %d switches, want 4", len(snap))
	}
	for _, h := range snap {
		if h.Verdict != health.Healthy {
			t.Fatalf("switch %v is %v before any fault", h.Addr, h.Verdict)
		}
	}

	if err := c.KillSwitch(1); err != nil {
		t.Fatal(err)
	}
	// Detection lands within a few ms; the 24 affected virtual groups
	// then recover sequentially at the default 10 ms rule delay.
	c.RunFor(time.Second)

	var failover, recovered bool
	for _, ev := range c.RepairHistory() {
		switch ev.Action {
		case controller.ActionFailover:
			failover = true
		case controller.ActionRecoverDone:
			recovered = true
		}
	}
	if !failover || !recovered {
		t.Fatalf("autopilot did not heal the cluster: %v", c.RepairHistory())
	}

	// The healed cluster still serves.
	if _, err := cl.Write(key, Value{2}); err != nil {
		t.Fatalf("write after self-heal: %v", err)
	}
	got, _, err := cl.Read(key)
	if err != nil {
		t.Fatalf("read after self-heal: %v", err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("read after self-heal = %v, want [2]", got)
	}

	// Elastic membership still works (and terminates) with the
	// autopilot's background loops keeping the event queue busy — the
	// blocking verbs must step to their own completion, not drain the
	// simulator.
	idx, err := c.AttachSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddSwitch(idx); err != nil {
		t.Fatalf("scale-out with autopilot running: %v", err)
	}
	if v, _, err := cl.Read(key); err != nil || len(v) != 1 || v[0] != 2 {
		t.Fatalf("read after scale-out = %v, %v", v, err)
	}
}
