package netchain

import (
	"context"
	"testing"
	"time"
)

// TestWatchSurvivesRelayRestart kills and restarts the relay tier in the
// middle of a live event stream. The new incarnation rebinds the same
// ports with a fresh stream epoch and an empty lease table; the
// subscriber's lease renewals re-register it, the epoch change is
// detected as a stream gap, and the watch converges to the store's state
// — no event stream stuck on a dead sequencer, no stale final value.
func TestWatchSurvivesRelayRestart(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{RelayLeaseTTL: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, err := cl.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	observer, err := cl.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	defer observer.Close()

	k := KeyFromString("restart/cfg")
	if err := cl.Insert(k); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := observer.Watch(ctx, []Key{k},
		WithResyncInterval(100*time.Millisecond), WithAntiEntropy(0))
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(want string) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev, open := <-ch:
				if !open {
					t.Fatalf("stream closed waiting for %q", want)
				}
				if string(ev.Value) == want {
					return
				}
			case <-deadline:
				t.Fatalf("no event carrying %q", want)
			}
		}
	}

	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}
	waitFor("v1")

	if err := cl.RestartRelay(); err != nil {
		t.Fatalf("restart relay: %v", err)
	}

	// Writes racing the restart may land while the new incarnation has no
	// leases yet — their events are simply lost upstream of any
	// subscriber. The later epoch-tagged events expose the reset as a gap
	// and the resync re-reads the key, so the stream still converges to
	// the newest value.
	if _, err := writer.Write(k, Value("v2")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // a lease-renewal cadence on the new relay
	if _, err := writer.Write(k, Value("v3")); err != nil {
		t.Fatal(err)
	}
	waitFor("v3")

	// The new incarnation is serving the stream now: a steady-state write
	// must arrive as a pushed event (the relay's egress counters move).
	before := cl.RelayStats()
	if _, err := writer.Write(k, Value("v4")); err != nil {
		t.Fatal(err)
	}
	waitFor("v4")
	after := cl.RelayStats()
	if after.EventsIn <= before.EventsIn {
		t.Fatalf("restarted relay saw no ingest: before=%+v after=%+v", before, after)
	}
}
