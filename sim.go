package netchain

import (
	"fmt"
	"time"

	"netchain/internal/controller"
	"netchain/internal/event"
	"netchain/internal/experiments"
	"netchain/internal/health"
	"netchain/internal/kv"
	"netchain/internal/netsim"
	"netchain/internal/packet"
	"netchain/internal/simclient"
)

// SimConfig sizes a simulated cluster: the paper's Fig. 8 testbed (four
// Tofino switches, four servers) by default, or a parameterized multi-tier
// fabric via Topology.
type SimConfig struct {
	// Scale divides all rates for tractable event counts; 1 simulates true
	// hardware rates. Default 1000.
	Scale float64
	// VNodesPerSwitch sets virtual-group granularity. Default 8 on the
	// testbed, 4 on fabrics (which have many more member switches).
	VNodesPerSwitch int
	// Seed drives placement and loss determinism. Default 1.
	Seed int64
	// Topology picks the substrate: "ring" (default, the Fig. 8 testbed),
	// "spine-leaf:SxL" or "fattree:k". Fabric clusters run two hosts per
	// leaf, hold the last leaf out of the ring as the recovery spare, and
	// install bottleneck-aware chain placement.
	Topology string
}

func (c *SimConfig) defaults() {
	if c.Scale == 0 {
		c.Scale = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Topology == "" {
		c.Topology = "ring"
	}
}

// SimCluster is a deterministic simulation of the testbed: same dataplane
// code as the real cluster, driven by a discrete-event engine — the
// substrate behind every figure reproduction.
type SimCluster struct {
	d  *experiments.Deployment
	ap *experiments.AutopilotHarness
}

// NewSimCluster builds the simulated cluster on the configured topology.
func NewSimCluster(cfg SimConfig) (*SimCluster, error) {
	cfg.defaults()
	spec, err := netsim.ParseTopology(cfg.Topology)
	if err != nil {
		return nil, err
	}
	var d *experiments.Deployment
	if spec.Kind == "ring" {
		vn := cfg.VNodesPerSwitch
		if vn == 0 {
			vn = 8
		}
		d, err = experiments.NewDeployment(cfg.Scale, vn, cfg.Seed)
	} else {
		d, err = experiments.NewFabricDeployment(experiments.FabricOpts{
			Spec: spec, Scale: cfg.Scale, VNodes: cfg.VNodesPerSwitch,
			Seed: cfg.Seed, HostsPerLeaf: 2, SpareLeaves: 1,
			Placement: "bottleneck",
		})
	}
	if err != nil {
		return nil, err
	}
	return &SimCluster{d: d}, nil
}

// Topology reports the substrate the cluster runs on ("ring" or the
// fabric spec, e.g. "fattree:4").
func (s *SimCluster) Topology() string { return s.d.Topology() }

// Insert allocates a key on its chain.
func (s *SimCluster) Insert(k Key) error {
	_, err := s.d.Ctl.Insert(k)
	return err
}

// Now returns the current simulated time.
func (s *SimCluster) Now() time.Duration { return time.Duration(s.d.Sim.Now()) }

// RunFor advances simulated time.
func (s *SimCluster) RunFor(d time.Duration) { s.d.Sim.RunFor(event.Duration(d)) }

// runUntil steps the simulator until stop() reports true — used instead
// of Sim.Run() by every blocking verb, because with the autopilot enabled
// the heartbeat/probe/reconcile loops keep the event queue populated
// forever and a full drain would never return.
func (s *SimCluster) runUntil(stop func() bool) {
	for !stop() && s.d.Sim.Step() {
	}
}

// FailSwitch fail-stops switch i and triggers failover after detectLag.
func (s *SimCluster) FailSwitch(i int, detectLag time.Duration) error {
	addr, err := s.switchAddr(i)
	if err != nil {
		return err
	}
	if err := s.d.Net.FailSwitch(addr); err != nil {
		return err
	}
	var ferr error
	done := false
	s.d.Sim.After(event.Duration(detectLag), func() {
		ferr = s.d.Ctl.HandleFailure(addr, func() { done = true })
		if ferr != nil {
			done = true
		}
	})
	s.runUntil(func() bool { return done })
	return ferr
}

// Recover restores switch i's chains onto the spare switch j.
func (s *SimCluster) Recover(i, spare int) error {
	failed, err := s.switchAddr(i)
	if err != nil {
		return err
	}
	pool, err := s.switchAddr(spare)
	if err != nil {
		return err
	}
	done := false
	if err := s.d.Ctl.Recover(failed,
		[]packet.Addr{pool}, func() { done = true }); err != nil {
		return err
	}
	s.runUntil(func() bool { return done })
	if !done {
		return fmt.Errorf("netchain: simulated recovery did not finish")
	}
	return nil
}

// switchAddr resolves a switch index. Testbed: 0..3 are S0..S3, higher
// indexes are switches attached later. Fabric: build order — top tier
// first (spines/cores), then per pod aggregation and edge switches.
func (s *SimCluster) switchAddr(i int) (packet.Addr, error) {
	if s.d.TB != nil {
		if i >= 0 && i < len(s.d.TB.Switches) {
			return s.d.TB.Switches[i], nil
		}
		if j := i - len(s.d.TB.Switches); j >= 0 && j < len(s.d.TB.Extra) {
			return s.d.TB.Extra[j], nil
		}
		return 0, fmt.Errorf("netchain: switch %d out of range", i)
	}
	sws := s.d.SwitchAddrs()
	if i < 0 || i >= len(sws) {
		return 0, fmt.Errorf("netchain: switch %d out of range", i)
	}
	return sws[i], nil
}

// AddSwitch live-migrates the cluster onto a layout that includes switch i
// (e.g. the spare S3): the switch joins the ring with its own virtual
// groups, state is copied over group by group, and routes flip atomically —
// reads keep serving throughout. It returns when the migration completes.
func (s *SimCluster) AddSwitch(i int) error {
	addr, err := s.switchAddr(i)
	if err != nil {
		return err
	}
	done := false
	if _, err := s.d.Ctl.AddSwitch(addr, func() { done = true }); err != nil {
		return err
	}
	s.runUntil(func() bool { return done })
	if !done {
		return fmt.Errorf("netchain: simulated scale-out did not finish")
	}
	return nil
}

// AttachSwitch cables a brand-new switch into the simulated testbed
// (linked to S0 and S2 like the spare) and returns its index for
// AddSwitch. Fabrics size their switch population from the topology spec
// and hold spare LEAVES instead — attaching ad-hoc switches is a testbed
// verb.
func (s *SimCluster) AttachSwitch() (int, error) {
	if s.d.TB == nil {
		return 0, fmt.Errorf("netchain: AttachSwitch needs the ring testbed, not %s", s.d.Topology())
	}
	if _, err := s.d.TB.AttachSwitch(); err != nil {
		return 0, err
	}
	return len(s.d.TB.Switches) + len(s.d.TB.Extra) - 1, nil
}

// RemoveSwitch live-drains switch i out of the ring: its virtual groups
// retire, their keys merge into successor groups (data copied before
// routes flip), and the switch ends up empty. It returns when the drain
// completes; the switch stays cabled but carries no state.
func (s *SimCluster) RemoveSwitch(i int) error {
	addr, err := s.switchAddr(i)
	if err != nil {
		return err
	}
	done := false
	if _, err := s.d.Ctl.RemoveSwitch(addr, func() { done = true }); err != nil {
		return err
	}
	s.runUntil(func() bool { return done })
	if !done {
		return fmt.Errorf("netchain: simulated scale-in did not finish")
	}
	if s.ap != nil {
		// Retirement, not failure: stop watching the drained switch so
		// powering it off cannot trigger a phantom repair.
		s.ap.Forget(addr)
	}
	return nil
}

// SwitchAddress resolves switch index i (0..3 are the testbed's S0..S3,
// higher indexes are switches attached later) to its fabric address — the
// handle nemesis schedules and route pins are built from.
func (s *SimCluster) SwitchAddress(i int) (packet.Addr, error) { return s.switchAddr(i) }

// HostAddress resolves host index h to its network address (testbed: 0..3;
// fabric: leaf-major order).
func (s *SimCluster) HostAddress(h int) (packet.Addr, error) {
	hosts := s.d.HostAddrs()
	if h < 0 || h >= len(hosts) {
		return 0, fmt.Errorf("netchain: host %d out of range", h)
	}
	return hosts[h], nil
}

// EnableAutopilot starts the self-healing control plane: per-switch
// heartbeat beacons feed a φ-accrual failure detector, data-plane probes
// score each switch's measured forwarding quality, and a reconcile loop
// repairs what the detector convicts — fast failover + recovery from the
// spare pool for fail-stop verdicts, tail demotion (reads drain off the
// degraded switch) for gray ones. No manual FailSwitch/Recover calls are
// needed afterwards; kill a switch with KillSwitch and watch the cluster
// heal. Idempotent.
func (s *SimCluster) EnableAutopilot() error {
	if s.ap != nil {
		return nil
	}
	h, err := experiments.StartAutopilot(s.d, experiments.AutopilotOpts{})
	if err != nil {
		return err
	}
	s.ap = h
	return nil
}

// KillSwitch fail-stops switch i WITHOUT notifying the control plane —
// detection is the autopilot's job (compare FailSwitch, which hands the
// failure to the controller after an explicit detection lag). Advance
// simulated time with RunFor and watch RepairHistory.
func (s *SimCluster) KillSwitch(i int) error {
	addr, err := s.switchAddr(i)
	if err != nil {
		return err
	}
	return s.d.Net.FailSwitch(addr)
}

// HealthSnapshot returns every switch's detector state — φ score, probe
// RTT EWMAs, verdict — as of the current simulated time. Empty until
// EnableAutopilot.
func (s *SimCluster) HealthSnapshot() []health.SwitchHealth {
	if s.ap == nil {
		return nil
	}
	return s.ap.Det.Snapshot(time.Duration(s.d.Sim.Now()))
}

// RepairHistory returns the autopilot's repair log. Empty until
// EnableAutopilot.
func (s *SimCluster) RepairHistory() []controller.RepairEvent {
	if s.ap == nil {
		return nil
	}
	return s.ap.Pilot.History()
}

// RunNemesis registers an adversarial fault schedule (reordering,
// duplication, jitter, asymmetric partitions, gray-degraded switches — see
// internal/netsim) with the cluster's simulator. Steps fire as simulated
// time passes through their At marks during subsequent RunFor/operation
// calls. The returned handle reports injection errors and keeps a
// timestamped log of what the nemesis did.
func (s *SimCluster) RunNemesis(sch netsim.Schedule) *netsim.Nemesis {
	return netsim.RunSchedule(s.d.Net, sch)
}

// RunNamedNemesis registers one of the named chaos schedules (see
// experiments.ChaosScheduleNames: reorder-dup, asym-partition, gray-tail,
// full-nemesis) against the cluster's simulator. The schedule carries
// only the fault timeline; "full-nemesis" callers inject the fail-stop
// themselves via FailSwitch/Recover.
func (s *SimCluster) RunNamedNemesis(name string) (*netsim.Nemesis, error) {
	sch, err := experiments.BuildSchedule(s.d, name)
	if err != nil {
		return nil, err
	}
	return netsim.RunSchedule(s.d.Net, sch), nil
}

// NetStats snapshots the fabric counters, including the nemesis's
// drop/duplicate/reorder/partition/gray tallies.
func (s *SimCluster) NetStats() netsim.Stats { return s.d.Net.Stats() }

// SimClient is a synchronous-feeling client over the simulation: each call
// injects the query and runs the simulator until the reply (or timeout)
// resolves, so examples and tests read top-to-bottom.
type SimClient struct {
	s   *SimCluster
	c   *simclient.Client
	mux *simclient.Mux
}

// NewClient binds a client to host h (0..3).
func (s *SimCluster) NewClient(h int) (*SimClient, error) {
	if h < 0 || h >= len(s.d.Muxes) {
		return nil, fmt.Errorf("netchain: host %d out of range", h)
	}
	c, err := s.d.Muxes[h].NewClient(simclient.DefaultConfig(), s.d.Directory())
	if err != nil {
		return nil, err
	}
	return &SimClient{s: s, c: c, mux: s.d.Muxes[h]}, nil
}

func (sc *SimClient) run(issue func(done func(simclient.Result))) (simclient.Result, error) {
	var res simclient.Result
	got := false
	issue(func(r simclient.Result) { res = r; got = true })
	// Step until the query resolves rather than draining the simulator
	// (see runUntil). Left-over retry timers are generation-guarded
	// no-ops; they fire during later calls or RunFor.
	sc.s.runUntil(func() bool { return got })
	if !got {
		return res, ErrTimeout
	}
	if res.Err != nil {
		return res, res.Err
	}
	return res, nil
}

// Read returns the value and version of k.
func (sc *SimClient) Read(k Key) (Value, Version, error) {
	res, err := sc.run(func(done func(simclient.Result)) { sc.c.Read(k, done) })
	if err != nil {
		return nil, Version{}, err
	}
	return res.Value, res.Version, res.Status.Err()
}

// Write stores v under k.
func (sc *SimClient) Write(k Key, v Value) (Version, error) {
	res, err := sc.run(func(done func(simclient.Result)) { sc.c.Write(k, v, done) })
	if err != nil {
		return Version{}, err
	}
	return res.Version, res.Status.Err()
}

// Delete tombstones k.
func (sc *SimClient) Delete(k Key) error {
	res, err := sc.run(func(done func(simclient.Result)) { sc.c.Delete(k, done) })
	if err != nil {
		return err
	}
	return res.Status.Err()
}

// CAS swaps iff the stored owner equals expect.
func (sc *SimClient) CAS(k Key, expect uint64, newValue Value) (bool, Value, error) {
	res, err := sc.run(func(done func(simclient.Result)) { sc.c.CAS(k, expect, newValue, done) })
	if err != nil {
		return false, nil, err
	}
	switch res.Status {
	case kv.StatusOK:
		return true, res.Value, nil
	case kv.StatusCASFail:
		return false, res.Value, nil
	default:
		return false, nil, res.Status.Err()
	}
}

// Latency returns the observed query latency distribution summary — with
// the paper's constants this sits at ~9.7 µs end to end (§8.2).
func (sc *SimClient) LatencySummary() string { return sc.c.Latency.Summary() }
