package netchain

import (
	"testing"
	"time"

	"netchain/internal/event"
	"netchain/internal/netsim"
)

// TestSimClusterNemesis drives the public chaos surface: a nemesis
// schedule registered through SimCluster keeps firing while clients
// operate, the fault counters land in NetStats, and the cluster keeps
// serving correct values through the adversity.
func TestSimClusterNemesis(t *testing.T) {
	c, err := NewSimCluster(SimConfig{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := c.SwitchAddress(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.HostAddress(9); err == nil {
		t.Fatal("host 9 must be out of range")
	}
	nm := c.RunNemesis(netsim.Schedule{
		{Name: "mangle", At: 0, Fault: netsim.ClusterChaos{F: netsim.LinkFault{
			Dup: 0.2, Reorder: 0.2, ReorderDelay: event.Duration(5 * time.Microsecond)}}},
		{Name: "gray-tail", At: 0, Fault: netsim.GraySwitch{
			Addr: tail, G: netsim.Gray{ExtraDelay: event.Duration(20 * time.Microsecond)}}},
	})
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{1}
	if err := c.Insert(key); err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 30; i++ {
		want := Value{0xAB, i}
		if _, err := cl.Write(key, want); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, _, err := cl.Read(key)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("read %d = %v, want %v", i, got, want)
		}
	}
	if err := nm.Err(); err != nil {
		t.Fatal(err)
	}
	st := c.NetStats()
	if st.DupCopies == 0 || st.Reordered == 0 {
		t.Fatalf("nemesis idle through SimCluster: %+v", st)
	}
}
