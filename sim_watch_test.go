package netchain

import (
	"context"
	"fmt"
	"testing"
	"time"

	"netchain/internal/experiments"
)

// drainWatch empties the channel without blocking, folding events into
// the per-key last-seen view and counting version regressions.
func drainWatch(ch <-chan WatchEvent, last map[Key]WatchEvent, regressions *int) {
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if prev, seen := last[ev.Key]; seen && ev.Version.Less(prev.Version) {
				*regressions++
			}
			last[ev.Key] = ev
		default:
			return
		}
	}
}

// TestSimPushWatchDelivers: the simulated push pipeline end to end —
// commit hook at the tail, relay host sequencing, multicast fan-out into
// the subscriber's mux sink — with zero resync reads in the steady state.
func TestSimPushWatchDelivers(t *testing.T) {
	c, err := NewSimCluster(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}

	keys := []Key{KeyFromString("sim/a"), KeyFromString("sim/b")}
	for _, k := range keys {
		if err := c.Insert(k); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := ob.Watch(ctx, keys,
		WithResyncInterval(time.Millisecond), WithAntiEntropy(0))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Millisecond) // initial fetch resolves: keys absent, no events

	last := map[Key]WatchEvent{}
	regressions := 0
	drainWatch(ch, last, &regressions)
	if len(last) != 0 {
		t.Fatalf("events before any write: %v", last)
	}

	if _, err := wr.Write(keys[0], Value("v1")); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Millisecond)
	drainWatch(ch, last, &regressions)
	ev, ok := last[keys[0]]
	if !ok || ev.Type != WatchCreated || string(ev.Value) != "v1" {
		t.Fatalf("after first write: %+v (delivered=%v)", ev, ok)
	}

	if _, err := wr.Write(keys[0], Value("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := wr.Write(keys[1], Value("w1")); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Millisecond)
	drainWatch(ch, last, &regressions)
	if ev := last[keys[0]]; ev.Type != WatchUpdated || string(ev.Value) != "v2" {
		t.Fatalf("update event = %+v", ev)
	}
	if ev := last[keys[1]]; ev.Type != WatchCreated || string(ev.Value) != "w1" {
		t.Fatalf("second key event = %+v", ev)
	}

	if err := wr.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Millisecond)
	drainWatch(ch, last, &regressions)
	if ev := last[keys[0]]; ev.Type != WatchDeleted {
		t.Fatalf("delete event = %+v", ev)
	}
	if regressions != 0 {
		t.Fatalf("%d version regressions", regressions)
	}

	// Cancel tears the stream down at the next timer firing.
	cancel()
	c.RunFor(5 * time.Millisecond)
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
}

// TestSimWatchCancelImmediate: cancelling before any traffic closes the
// stream and leaves the simulator reusable.
func TestSimWatchCancelImmediate(t *testing.T) {
	c, err := NewSimCluster(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyFromString("sim/cancel")
	if err := c.Insert(k); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := ob.Watch(ctx, []Key{k}, WithResyncInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	c.RunFor(20 * time.Millisecond)
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("expected closed channel")
		}
	default:
		t.Fatal("channel neither closed nor readable after cancel")
	}
}

// TestWatchConvergesUnderNemesis is the watch-plane chaos suite: under
// each named nemesis schedule (duplication+reordering, an asymmetric
// partition, a gray tail, and everything at once plus a fail-stop with
// failover and recovery), a push-watch subscriber must deliver
// version-monotonic events and converge to the store's final state —
// gaps in the relay stream trigger linearizable re-reads, and the
// anti-entropy sweep bounds the staleness of a lost final event.
func TestWatchConvergesUnderNemesis(t *testing.T) {
	for _, name := range experiments.ChaosScheduleNames() {
		t.Run(name, func(t *testing.T) {
			c, err := NewSimCluster(SimConfig{})
			if err != nil {
				t.Fatal(err)
			}
			wr, err := c.NewClient(0)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := c.NewClient(1)
			if err != nil {
				t.Fatal(err)
			}
			var keys []Key
			for i := 0; i < 6; i++ {
				// Each subtest owns a fresh cluster, so short names cannot
				// collide across schedules (keys truncate at 16 bytes).
				k := KeyFromString(fmt.Sprintf("chaos/%d", i))
				if err := c.Insert(k); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ch, err := ob.Watch(ctx, keys,
				WithWatchBuffer(1024),
				WithResyncInterval(time.Millisecond),
				WithAntiEntropy(4*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.RunNamedNemesis(name); err != nil {
				t.Fatal(err)
			}

			last := map[Key]WatchEvent{}
			regressions := 0
			// Write rounds riding through the fault windows (the schedules
			// span ~0–25 ms of simulated time). Timeouts are the nemesis
			// doing its job; the watcher must still converge.
			for round := 1; round <= 8; round++ {
				for i, k := range keys {
					_, _ = wr.Write(k, Value(fmt.Sprintf("r%02d-%d", round, i)))
				}
				c.RunFor(3 * time.Millisecond)
				drainWatch(ch, last, &regressions)
			}
			if name == "full-nemesis" {
				// The acceptance scenario: S1 fail-stops, failover runs,
				// then its groups recover onto the spare S3 — the watch
				// stream must ride across the session bump.
				if err := c.FailSwitch(1, time.Millisecond); err != nil {
					t.Fatal(err)
				}
				if err := c.Recover(1, 3); err != nil {
					t.Fatal(err)
				}
				for i, k := range keys {
					_, _ = wr.Write(k, Value(fmt.Sprintf("post-recover-%d", i)))
				}
			}

			// Faults expire; let anti-entropy close any remaining holes,
			// then require exact convergence on every key.
			deadline := 200
			converged := func() (bool, string) {
				for _, k := range keys {
					val, ver, err := wr.Read(k)
					if err != nil {
						return false, fmt.Sprintf("read %v: %v", k, err)
					}
					ev, ok := last[k]
					if !ok || ev.Version != ver || string(ev.Value) != string(val) {
						return false, fmt.Sprintf("key %v: watch=%+v store=(%q,%v)", k, ev, val, ver)
					}
				}
				return true, ""
			}
			var why string
			for i := 0; i < deadline; i++ {
				c.RunFor(2 * time.Millisecond)
				drainWatch(ch, last, &regressions)
				var ok bool
				if ok, why = converged(); ok {
					break
				}
			}
			if ok, _ := converged(); !ok {
				t.Fatalf("watcher never converged under %s: %s", name, why)
			}
			if regressions != 0 {
				t.Fatalf("%d version regressions under %s", regressions, name)
			}
		})
	}
}
