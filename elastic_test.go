package netchain_test

import (
	"fmt"
	"testing"

	"netchain"
)

// TestClusterElasticScaleOutScaleIn drives the real (UDP + net/rpc)
// cluster through a full elastic cycle: grow by one switch, shrink back,
// with data intact and writable at every step.
func TestClusterElasticScaleOutScaleIn(t *testing.T) {
	cl, err := netchain.StartLocalCluster(netchain.ClusterConfig{
		Switches: 4, Replicas: 3, VNodesPerSwitch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := make([]netchain.Key, 24)
	for i := range keys {
		keys[i] = netchain.KeyFromUint64(uint64(7000 + i))
		if err := cl.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(keys[i], netchain.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("seed write %d: %v", i, err)
		}
	}

	// Scale out: a fifth switch boots and joins the ring live.
	idx, err := cl.AddSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 4 {
		t.Fatalf("new switch index = %d, want 4", idx)
	}
	for i, k := range keys {
		v, _, err := c.Read(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read %d after scale-out: %q %v", i, v, err)
		}
		if _, err := c.Write(k, netchain.Value(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatalf("write %d after scale-out: %v", i, err)
		}
	}

	// Scale back in: drain the new switch out again.
	if err := cl.RemoveSwitch(idx); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, _, err := c.Read(k)
		if err != nil || string(v) != fmt.Sprintf("w%d", i) {
			t.Fatalf("read %d after scale-in: %q %v", i, v, err)
		}
		if _, err := c.Write(k, netchain.Value("final")); err != nil {
			t.Fatalf("write %d after scale-in: %v", i, err)
		}
	}
	// No route may still reference the drained switch.
	drained := cl.SwitchAddr(idx)
	for _, k := range keys {
		for _, h := range cl.Controller().Route(k).Hops {
			if h == drained {
				t.Fatalf("key still routed through drained switch %v", drained)
			}
		}
	}
}

// TestSimClusterElasticity exercises the same cycle on the deterministic
// simulated testbed, including attaching a brand-new fifth switch.
func TestSimClusterElasticity(t *testing.T) {
	s, err := netchain.NewSimCluster(netchain.SimConfig{VNodesPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := s.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	k := netchain.KeyFromString("elastic")
	if err := s.Insert(k); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(k, netchain.Value("one")); err != nil {
		t.Fatal(err)
	}

	// Admit the spare S3, then a freshly attached S4.
	if err := s.AddSwitch(3); err != nil {
		t.Fatal(err)
	}
	idx, err := s.AttachSwitch()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 4 {
		t.Fatalf("attached index = %d, want 4", idx)
	}
	if err := s.AddSwitch(idx); err != nil {
		t.Fatal(err)
	}
	if v, _, err := cl.Read(k); err != nil || string(v) != "one" {
		t.Fatalf("read after scale-out: %q %v", v, err)
	}
	if _, err := cl.Write(k, netchain.Value("two")); err != nil {
		t.Fatal(err)
	}

	// Drain S1 (an original member) back out.
	if err := s.RemoveSwitch(1); err != nil {
		t.Fatal(err)
	}
	if v, _, err := cl.Read(k); err != nil || string(v) != "two" {
		t.Fatalf("read after scale-in: %q %v", v, err)
	}
	if _, err := cl.Write(k, netchain.Value("three")); err != nil {
		t.Fatal(err)
	}
}
