package netchain

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestLocalClusterLifecycle(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := cl.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	k := KeyFromString("app/config")
	if err := cl.Insert(k); err != nil {
		t.Fatal(err)
	}
	ver, err := c.Write(k, Value(`{"timeout": 30}`))
	if err != nil || ver.Seq != 1 {
		t.Fatalf("write: %v %v", ver, err)
	}
	v, rv, err := c.Read(k)
	if err != nil || string(v) != `{"timeout": 30}` || rv != ver {
		t.Fatalf("read: %q %v %v", v, rv, err)
	}
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(k); err != ErrNotFound {
		t.Fatalf("read after delete: %v", err)
	}
	if err := cl.GC(k); err != nil {
		t.Fatal(err)
	}
}

func TestLocalClusterLocksAndCAS(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, _ := cl.NewClient(0)
	defer c.Close()

	lk := KeyFromString("lock/api")
	cl.Insert(lk)
	if ok, err := c.Acquire(lk, 7); err != nil || !ok {
		t.Fatalf("acquire: %v %v", ok, err)
	}
	if ok, _ := c.Acquire(lk, 8); ok {
		t.Fatal("contender acquired a held lock")
	}
	swapped, stored, err := c.CAS(lk, 999, LockValue(1, nil))
	if err != nil || swapped {
		t.Fatalf("CAS with wrong expect must fail: %v %v", swapped, err)
	}
	if LockOwner(stored) != 7 {
		t.Fatalf("stored owner = %d, want 7", LockOwner(stored))
	}
	if ok, _ := c.Release(lk, 7); !ok {
		t.Fatal("owner release failed")
	}
}

func TestLocalClusterFailoverRecovery(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, _ := cl.NewClient(0)
	defer c.Close()

	keys := make([]Key, 6)
	for i := range keys {
		keys[i] = KeyFromUint64(uint64(i))
		if err := cl.Insert(keys[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(keys[i], Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.FailSwitch(1); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, _, err := c.Read(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("read %d after failover: %q %v", i, v, err)
		}
	}
	if err := cl.Recover(1, 3); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if _, err := c.Write(k, Value(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatalf("write %d after recovery: %v", i, err)
		}
	}
}

func TestLocalClusterValidation(t *testing.T) {
	if _, err := StartLocalCluster(ClusterConfig{Switches: 2, Replicas: 3}); err == nil {
		t.Fatal("too few switches must be rejected")
	}
}

func TestSimClusterQuickPath(t *testing.T) {
	s, err := NewSimCluster(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewClient(99); err == nil {
		t.Fatal("bad host index must be rejected")
	}

	k := KeyFromString("sim/key")
	if err := s.Insert(k); err != nil {
		t.Fatal(err)
	}
	ver, err := c.Write(k, Value("hello"))
	if err != nil || ver.Seq != 1 {
		t.Fatalf("write: %v %v", ver, err)
	}
	v, _, err := c.Read(k)
	if err != nil || string(v) != "hello" {
		t.Fatalf("read: %q %v", v, err)
	}
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Read(k); err != ErrNotFound {
		t.Fatalf("read after delete: %v", err)
	}
	if got := c.LatencySummary(); !strings.Contains(got, "n=") {
		t.Fatalf("latency summary: %q", got)
	}
}

func TestSimClusterFailureLifecycle(t *testing.T) {
	s, err := NewSimCluster(SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.NewClient(0)
	k := KeyFromString("sim/ha")
	s.Insert(k)
	if _, err := c.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.FailSwitch(1, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if v, _, err := c.Read(k); err != nil || string(v) != "v1" {
		t.Fatalf("read after failover: %q %v", v, err)
	}
	if err := s.Recover(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(k, Value("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, err := c.Read(k); err != nil || string(v) != "v2" {
		t.Fatalf("read after recovery: %q %v", v, err)
	}
	if s.Now() == 0 {
		t.Fatal("simulated clock did not advance")
	}
}

func TestSimClusterCAS(t *testing.T) {
	s, _ := NewSimCluster(SimConfig{})
	c, _ := s.NewClient(0)
	lk := KeyFromString("sim/lock")
	s.Insert(lk)
	ok, _, err := c.CAS(lk, 0, LockValue(5, nil))
	if err != nil || !ok {
		t.Fatalf("CAS acquire: %v %v", ok, err)
	}
	ok, stored, err := c.CAS(lk, 0, LockValue(6, nil))
	if err != nil || ok || LockOwner(stored) != 5 {
		t.Fatalf("CAS steal: ok=%v stored=%d err=%v", ok, LockOwner(stored), err)
	}
}
