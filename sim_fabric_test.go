package netchain

import (
	"testing"
	"time"

	"netchain/internal/controller"
)

// TestSimClusterFabricSelfHeals runs the public cluster surface on the
// fattree:4 fabric: reads and writes through a leaf-attached host, then a
// member leaf is killed with no controller notification and the autopilot
// must fail over and recover onto the spare leaf — same contract as the
// testbed, twenty switches instead of four.
func TestSimClusterFabricSelfHeals(t *testing.T) {
	c, err := NewSimCluster(SimConfig{Scale: 1, Seed: 7, Topology: "fattree:4"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Topology(); got != "fattree:4" {
		t.Fatalf("Topology() = %q, want fattree:4", got)
	}
	if err := c.EnableAutopilot(); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{42}
	if err := c.Insert(key); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Write(key, Value{1}); err != nil {
		t.Fatal(err)
	}
	c.RunFor(20 * time.Millisecond) // detector warmup

	// fattree:4 switch order is build order: 4 cores, then per pod 2 aggs
	// + 2 edges — so pod 0's edges are indexes 6 and 7. Kill the SECOND
	// member leaf (10.0.3.2): the client's host hangs off the first, and
	// self-healing replaces chain members, not access links.
	if err := c.KillSwitch(7); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time.Second)

	var failover, recovered bool
	for _, ev := range c.RepairHistory() {
		switch ev.Action {
		case controller.ActionFailover:
			failover = true
		case controller.ActionRecoverDone:
			recovered = true
		}
	}
	if !failover || !recovered {
		t.Fatalf("autopilot did not heal the fabric: %v", c.RepairHistory())
	}

	// The healed fabric still serves.
	if _, err := cl.Write(key, Value{2}); err != nil {
		t.Fatalf("write after self-heal: %v", err)
	}
	got, _, err := cl.Read(key)
	if err != nil {
		t.Fatalf("read after self-heal: %v", err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("read after self-heal = %v, want [2]", got)
	}

	// Ad-hoc switch attachment is a testbed verb; fabrics must refuse it
	// instead of wiring a switch the topology spec knows nothing about.
	if _, err := c.AttachSwitch(); err == nil {
		t.Fatal("AttachSwitch succeeded on a fabric")
	}
}

// TestSimClusterTopologyValidation: a bad -topology string fails fast.
func TestSimClusterTopologyValidation(t *testing.T) {
	if _, err := NewSimCluster(SimConfig{Topology: "torus:9"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := NewSimCluster(SimConfig{Topology: "fattree:3"}); err == nil {
		t.Fatal("odd fat-tree arity accepted")
	}
}
