package netchain_test

import (
	"fmt"

	"netchain"
)

// ExampleStartLocalCluster boots a real four-switch deployment on
// loopback, allocates a key through the controller, and round-trips a
// value over UDP through the three-switch chain.
func ExampleStartLocalCluster() {
	cluster, err := netchain.StartLocalCluster(netchain.ClusterConfig{})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer cluster.Close()

	client, err := cluster.NewClient(0) // attach through switch 0, the client's ToR
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer client.Close()

	key := netchain.KeyFromString("greeting")
	if err := cluster.Insert(key); err != nil { // the controller allocates the chain (§4.1)
		fmt.Println("insert:", err)
		return
	}
	if _, err := client.Write(key, netchain.Value("hello, netchain")); err != nil {
		fmt.Println("write:", err)
		return
	}
	v, ver, err := client.Read(key)
	if err != nil {
		fmt.Println("read:", err)
		return
	}
	fmt.Printf("%s @ seq %d\n", v, ver.Seq)
	// Output: hello, netchain @ seq 1
}

// ExampleClient_CAS swaps a value only when the stored owner field matches
// the expectation — the primitive behind the §8.5 lock service.
func ExampleClient_CAS() {
	cluster, err := netchain.StartLocalCluster(netchain.ClusterConfig{})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer cluster.Close()
	client, err := cluster.NewClient(0)
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer client.Close()

	key := netchain.KeyFromString("leader")
	if err := cluster.Insert(key); err != nil {
		fmt.Println("insert:", err)
		return
	}

	// First claim succeeds: the slot is empty, owner 0.
	swapped, _, err := client.CAS(key, 0, netchain.LockValue(7, []byte("node-7")))
	if err != nil {
		fmt.Println("cas:", err)
		return
	}
	fmt.Println("claim by 7:", swapped)

	// A competing claim fails and reports the current holder.
	swapped, stored, err := client.CAS(key, 0, netchain.LockValue(8, []byte("node-8")))
	if err != nil {
		fmt.Println("cas:", err)
		return
	}
	fmt.Println("claim by 8:", swapped, "- held by", netchain.LockOwner(stored))
	// Output:
	// claim by 7: true
	// claim by 8: false - held by 7
}

// ExampleClient_Acquire runs a full lock cycle: acquire, contend, release,
// re-acquire. Acquire is an idempotent CAS, so a client whose reply was
// lost can safely retry (§4.3).
func ExampleClient_Acquire() {
	cluster, err := netchain.StartLocalCluster(netchain.ClusterConfig{})
	if err != nil {
		fmt.Println("start:", err)
		return
	}
	defer cluster.Close()
	client, err := cluster.NewClient(0)
	if err != nil {
		fmt.Println("client:", err)
		return
	}
	defer client.Close()

	lock := netchain.KeyFromString("locks/build")
	if err := cluster.Insert(lock); err != nil {
		fmt.Println("insert:", err)
		return
	}

	report := func(what string, ok bool, err error) {
		if err != nil {
			fmt.Println(what+":", err)
			return
		}
		fmt.Println(what+":", ok)
	}
	ok, err := client.Acquire(lock, 42)
	report("acquire by 42", ok, err)
	ok, err = client.Acquire(lock, 42) // lost-reply retry: still holds
	report("re-acquire by 42", ok, err)
	ok, err = client.Acquire(lock, 99) // contender is refused
	report("acquire by 99", ok, err)
	ok, err = client.Release(lock, 42)
	report("release by 42", ok, err)
	ok, err = client.Acquire(lock, 99) // free again
	report("acquire by 99", ok, err)
	// Output:
	// acquire by 42: true
	// re-acquire by 42: true
	// acquire by 99: false
	// release by 42: true
	// acquire by 99: true
}
