package netchain

import (
	"testing"
	"time"
)

func TestWatcherOnRealCluster(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()
	observer, _ := cl.NewClient(1)
	defer observer.Close()

	k := KeyFromString("watched/cfg")
	if err := cl.Insert(k); err != nil {
		t.Fatal(err)
	}

	w, err := observer.NewWatcher(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	ch, cancel, err := w.Watch(k)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	expect := func(typ WatchEvent, want string) WatchEvent {
		t.Helper()
		select {
		case ev := <-ch:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no event (wanted %s)", want)
		}
		return WatchEvent{}
	}

	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}
	ev := expect(WatchEvent{}, "created")
	if ev.Type != WatchCreated || string(ev.Value) != "v1" {
		t.Fatalf("event = %+v", ev)
	}

	if _, err := writer.Write(k, Value("v2")); err != nil {
		t.Fatal(err)
	}
	ev = expect(WatchEvent{}, "updated")
	if ev.Type != WatchUpdated || string(ev.Value) != "v2" || ev.Version.Seq != 2 {
		t.Fatalf("event = %+v", ev)
	}

	if err := writer.Delete(k); err != nil {
		t.Fatal(err)
	}
	ev = expect(WatchEvent{}, "deleted")
	if ev.Type != WatchDeleted {
		t.Fatalf("event = %+v", ev)
	}
}

// TestWatcherSurvivesFailover: a watch keeps delivering through a switch
// failure — the coordination-service behaviour applications rely on.
func TestWatcherSurvivesFailover(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()

	k := KeyFromString("watched/ha")
	cl.Insert(k)
	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}

	w, err := writer.NewWatcher(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	ch, cancel, _ := w.Watch(k)
	defer cancel()

	// Drain the initial Created event.
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no initial event")
	}

	if err := cl.FailSwitch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(k, Value("post-failover")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Type != WatchUpdated || string(ev.Value) != "post-failover" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch went silent across failover")
	}
}
