package netchain

import (
	"context"
	"testing"
	"time"
)

// TestPushWatchOnRealCluster: the redesigned streaming API end to end on
// loopback UDP — tail commit egress, relay sequencing, unicast-lease
// fan-out — with the full Created/Updated/Deleted lifecycle.
func TestPushWatchOnRealCluster(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()
	observer, _ := cl.NewClient(1)
	defer observer.Close()

	k := KeyFromString("push/cfg")
	if err := cl.Insert(k); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := observer.Watch(ctx, []Key{k})
	if err != nil {
		t.Fatal(err)
	}

	expect := func(want string) WatchEvent {
		t.Helper()
		select {
		case ev := <-ch:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no event (wanted %s)", want)
		}
		return WatchEvent{}
	}

	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}
	ev := expect("created")
	if ev.Type != WatchCreated || string(ev.Value) != "v1" {
		t.Fatalf("event = %+v", ev)
	}

	if _, err := writer.Write(k, Value("v2")); err != nil {
		t.Fatal(err)
	}
	ev = expect("updated")
	if ev.Type != WatchUpdated || string(ev.Value) != "v2" || ev.Version.Seq != 2 {
		t.Fatalf("event = %+v", ev)
	}

	if err := writer.Delete(k); err != nil {
		t.Fatal(err)
	}
	ev = expect("deleted")
	if ev.Type != WatchDeleted {
		t.Fatalf("event = %+v", ev)
	}

	rs := cl.RelayStats()
	if rs.EventsIn < 3 || rs.EgressDatagrams < 3 {
		t.Fatalf("relay stats = %+v, want ≥3 events through the tier", rs)
	}

	// ctx cancel closes the stream.
	cancel()
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("event after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after cancel")
	}
}

// TestPushWatchSurvivesFailover: a push stream keeps delivering after a
// chain switch fail-stops and the controller rewires the chain — the new
// tail's commits keep feeding the relay.
func TestPushWatchSurvivesFailover(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()

	k := KeyFromString("push/ha")
	cl.Insert(k)
	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := writer.Watch(ctx, []Key{k})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch: // initial Created from the state fetch
	case <-time.After(5 * time.Second):
		t.Fatal("no initial event")
	}

	if err := cl.FailSwitch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(k, Value("post-failover")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Type != WatchUpdated || string(ev.Value) != "post-failover" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push stream went silent across failover")
	}
}

// TestPushWatchPollFallback: with no relay tier reachable, WithPollFallback
// degrades the same API to version polling instead of failing.
func TestPushWatchPollFallback(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()

	k := KeyFromString("push/poll")
	cl.Insert(k)

	// Simulate a missing relay tier.
	saved := cl.relaySrv
	cl.relaySrv = nil
	defer func() { cl.relaySrv = saved }()

	if _, err := writer.Watch(context.Background(), []Key{k}); err == nil {
		t.Fatal("Watch without relay and without fallback should fail")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := writer.Watch(ctx, []Key{k}, WithPollFallback(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if string(ev.Value) != "v1" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("poll fallback never delivered")
	}
}

func TestWatcherOnRealCluster(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()
	observer, _ := cl.NewClient(1)
	defer observer.Close()

	k := KeyFromString("watched/cfg")
	if err := cl.Insert(k); err != nil {
		t.Fatal(err)
	}

	w, err := observer.NewWatcher(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	ch, cancel, err := w.Watch(k)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	expect := func(typ WatchEvent, want string) WatchEvent {
		t.Helper()
		select {
		case ev := <-ch:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no event (wanted %s)", want)
		}
		return WatchEvent{}
	}

	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}
	ev := expect(WatchEvent{}, "created")
	if ev.Type != WatchCreated || string(ev.Value) != "v1" {
		t.Fatalf("event = %+v", ev)
	}

	if _, err := writer.Write(k, Value("v2")); err != nil {
		t.Fatal(err)
	}
	ev = expect(WatchEvent{}, "updated")
	if ev.Type != WatchUpdated || string(ev.Value) != "v2" || ev.Version.Seq != 2 {
		t.Fatalf("event = %+v", ev)
	}

	if err := writer.Delete(k); err != nil {
		t.Fatal(err)
	}
	ev = expect(WatchEvent{}, "deleted")
	if ev.Type != WatchDeleted {
		t.Fatalf("event = %+v", ev)
	}
}

// TestWatcherSurvivesFailover: a watch keeps delivering through a switch
// failure — the coordination-service behaviour applications rely on.
func TestWatcherSurvivesFailover(t *testing.T) {
	cl, err := StartLocalCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	writer, _ := cl.NewClient(0)
	defer writer.Close()

	k := KeyFromString("watched/ha")
	cl.Insert(k)
	if _, err := writer.Write(k, Value("v1")); err != nil {
		t.Fatal(err)
	}

	w, err := writer.NewWatcher(2 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	ch, cancel, _ := w.Watch(k)
	defer cancel()

	// Drain the initial Created event.
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no initial event")
	}

	if err := cl.FailSwitch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Write(k, Value("post-failover")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		if ev.Type != WatchUpdated || string(ev.Value) != "post-failover" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch went silent across failover")
	}
}
