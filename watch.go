package netchain

import (
	"time"

	"netchain/internal/watch"
)

// WatchEvent is a change notification from a Watcher.
type WatchEvent = watch.Event

// Watch event types.
const (
	WatchCreated = watch.Created
	WatchUpdated = watch.Updated
	WatchDeleted = watch.Deleted
)

// Watcher polls keys and notifies subscribers of version changes — the
// ZooKeeper-style watches the paper lists as future work (§6),
// implemented client-side because switches cannot originate packets.
type Watcher = watch.Watcher

// NewWatcher starts a watcher polling through this client at the given
// interval. Stop it when done.
func (cl *Client) NewWatcher(interval time.Duration) (*Watcher, error) {
	return watch.New(cl.ops, interval)
}
