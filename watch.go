package netchain

import (
	"context"
	"errors"
	"fmt"
	"time"

	"netchain/internal/event"
	"netchain/internal/experiments"
	"netchain/internal/kv"
	"netchain/internal/packet"
	"netchain/internal/query"
	"netchain/internal/relay"
	"netchain/internal/simclient"
	"netchain/internal/watch"
)

// WatchEvent is a change notification from a watch stream.
type WatchEvent = watch.Event

// Watch event types.
const (
	WatchCreated = watch.Created
	WatchUpdated = watch.Updated
	WatchDeleted = watch.Deleted
)

// WatchOption tunes a Watch call.
type WatchOption func(*watchOpts)

type watchOpts struct {
	buffer       int
	resync       time.Duration // dirty-key read retry / gap-resync cadence
	antiEntropy  time.Duration // full re-read sweep period; 0 disables
	pollInterval time.Duration // poll fallback cadence; 0 disables fallback
}

func buildWatchOpts(opts []WatchOption) watchOpts {
	o := watchOpts{
		buffer:      64,
		resync:      200 * time.Millisecond,
		antiEntropy: 10 * time.Second,
	}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// WithWatchBuffer sizes the event channel. Slow consumers coalesce: when
// the buffer is full the event is dropped, the key is marked dirty, and a
// later resync delivers the newest state instead — subscribers may miss
// intermediate values, never the final one.
func WithWatchBuffer(n int) WatchOption { return func(o *watchOpts) { o.buffer = n } }

// WithResyncInterval sets the cadence at which keys marked dirty (stream
// gaps, failed reads, overflow drops) are re-read. When nothing is dirty
// a tick issues no reads at all — the steady state of a push watch.
func WithResyncInterval(d time.Duration) WatchOption {
	return func(o *watchOpts) { o.resync = d }
}

// WithAntiEntropy sets the period of the full re-read sweep that catches
// a lost *final* event (which no later stream sequence can expose).
// 0 disables the sweep.
func WithAntiEntropy(d time.Duration) WatchOption {
	return func(o *watchOpts) { o.antiEntropy = d }
}

// WithPollFallback lets Watch degrade to version-polling every d when the
// cluster has no reachable relay tier, instead of failing. Without this
// option Watch returns an error in that case.
func WithPollFallback(d time.Duration) WatchOption {
	return func(o *watchOpts) { o.pollInterval = d }
}

// Watch subscribes to server-push notifications for keys. Events arrive
// on the returned channel until ctx is cancelled (the channel then
// closes). Delivery semantics:
//
//   - every watched key that exists produces an initial Created event
//     (the state fetch), then one event per observed change;
//   - events are version-ordered per key; duplicates and reordered frames
//     are suppressed, so the stream never moves backwards;
//   - relay stream-sequence gaps trigger linearizable re-reads of the
//     affected keys, and a periodic anti-entropy sweep bounds the
//     staleness window of a lost final event — the stream converges to
//     the store's state under loss, duplication and reordering.
//
// The push path costs zero reads while the stream is healthy; compare
// the deprecated NewWatcher, which polls every key forever.
func (cl *Client) Watch(ctx context.Context, keys []Key, opts ...WatchOption) (<-chan WatchEvent, error) {
	o := buildWatchOpts(opts)
	if len(keys) == 0 {
		return nil, fmt.Errorf("netchain: Watch needs at least one key")
	}
	ctl := cl.cluster.ctl
	sub := watch.NewSub(keys, func(k kv.Key) uint16 { return ctl.Route(k).Group }, o.buffer)
	sig := make(chan struct{}, 1)
	deliver := func(ev query.Event) {
		if sub.ApplyEvent(ev) {
			select {
			case sig <- struct{}{}:
			default:
			}
		}
	}
	var conn *relay.Conn
	cl.cluster.mu.RLock()
	rs := cl.cluster.relaySrv
	cl.cluster.mu.RUnlock()
	if rs != nil {
		var subOpts []relay.SubOption
		if ttl := cl.cluster.cfg.RelayLeaseTTL; ttl > 0 {
			subOpts = append(subOpts, relay.WithRenewEvery(ttl/3))
		}
		if inj := cl.cluster.cfg.Faults; inj != nil {
			claddr, _ := cl.client.Endpoint()
			subOpts = append(subOpts, relay.WithSubFaults(inj.Pipe(claddr)))
		}
		c, err := relay.Subscribe(rs.Mode(), rs.ControlEndpoint(), sub.Groups(), deliver, subOpts...)
		if err != nil && o.pollInterval == 0 {
			sub.Close()
			return nil, err
		}
		conn = c
	} else if o.pollInterval == 0 {
		return nil, fmt.Errorf("netchain: cluster has no relay tier (use WithPollFallback to watch anyway)")
	}
	resync, antiEntropy := o.resync, o.antiEntropy
	if conn == nil {
		// Poll fallback: no event stream, so every interval is a full sweep.
		resync, antiEntropy = o.pollInterval, o.pollInterval
	}
	go cl.watchLoop(ctx, sub, conn, sig, resync, antiEntropy)
	return sub.Events(), nil
}

func (cl *Client) watchLoop(ctx context.Context, sub *watch.Sub, conn *relay.Conn,
	sig <-chan struct{}, resync, antiEntropy time.Duration) {
	defer sub.Close()
	if conn != nil {
		defer conn.Close()
	}
	readDirty := func() {
		for _, k := range sub.TakeDirty() {
			v, ver, err := cl.ops.Read(k)
			switch {
			case err == nil:
				sub.ApplyRead(k, true, v, ver)
			case errors.Is(err, ErrNotFound):
				sub.ApplyRead(k, false, nil, ver)
			default:
				sub.MarkDirty(k) // transient failure: retry next tick
			}
		}
	}
	readDirty() // initial state fetch (all keys start dirty)
	tick := time.NewTicker(resync)
	defer tick.Stop()
	var sweep <-chan time.Time
	if antiEntropy > 0 {
		t := time.NewTicker(antiEntropy)
		defer t.Stop()
		sweep = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-sig:
			readDirty()
		case <-tick.C:
			readDirty()
		case <-sweep:
			sub.MarkDirty()
			readDirty()
		}
	}
}

// WatchStats reports a sim watch stream's engine counters (tests and
// experiments; the real API exposes them per-cluster via relay stats).
type WatchStats = watch.SubStats

// Watch subscribes to server-push notifications for keys on the
// simulated cluster — same contract as Client.Watch. The sim relay tier
// attaches on first use; events and resync reads resolve while simulated
// time advances (RunFor), so drain the channel between RunFor calls.
// Cancelling ctx tears the stream down at the next delivery or timer
// firing (give the simulator a tick of time to observe it).
func (sc *SimClient) Watch(ctx context.Context, keys []Key, opts ...WatchOption) (<-chan WatchEvent, error) {
	o := buildWatchOpts(opts)
	if len(keys) == 0 {
		return nil, fmt.Errorf("netchain: Watch needs at least one key")
	}
	sr, err := sc.s.d.AttachRelay()
	if err != nil {
		return nil, err
	}
	ctl := sc.s.d.Ctl
	sub := watch.NewSub(keys, func(k kv.Key) uint16 { return ctl.Route(k).Group }, o.buffer)
	w := &simWatch{sc: sc, sr: sr, sub: sub, ctx: ctx}
	w.port, w.release = sc.mux.Sink(w.recv)
	for _, g := range sub.Groups() {
		if jerr := sr.Join(g, sc.mux.Addr(), w.port); jerr != nil {
			w.teardown()
			return nil, jerr
		}
		w.groups = append(w.groups, g)
	}
	w.readDirty() // initial state fetch resolves during stepping
	if o.resync > 0 {
		w.armTimer(event.Duration(o.resync), w.readDirty)
	}
	if o.antiEntropy > 0 {
		w.armTimer(event.Duration(o.antiEntropy), func() {
			w.sub.MarkDirty()
			w.readDirty()
		})
	}
	return sub.Events(), nil
}

// simWatch runs one push-watch stream inside the simulator. The sim is
// single-threaded: recv, read callbacks and timers all fire during
// stepping, so the only synchronization is the Sub's own lock.
type simWatch struct {
	sc      *SimClient
	sr      *experiments.SimRelay
	sub     *watch.Sub
	ctx     context.Context
	port    uint16
	release func()
	groups  []uint16
	closed  bool
}

// done checks for cancellation and tears the stream down on the first
// delivery point that observes it.
func (w *simWatch) done() bool {
	if w.closed {
		return true
	}
	if w.ctx.Err() != nil {
		w.teardown()
		return true
	}
	return false
}

func (w *simWatch) teardown() {
	if w.closed {
		return
	}
	w.closed = true
	for _, g := range w.groups {
		w.sr.Leave(g, w.sc.mux.Addr(), w.port)
	}
	w.release()
	w.sub.Close()
}

func (w *simWatch) recv(f *packet.Frame) {
	if w.done() || f.NC.Op != kv.OpEvent {
		return
	}
	ev, err := query.ParseEvent(f)
	if err != nil {
		return
	}
	if w.sub.ApplyEvent(ev) {
		w.readDirty()
	}
}

func (w *simWatch) readDirty() {
	for _, k := range w.sub.TakeDirty() {
		key := k
		w.sc.c.Read(key, func(res simclient.Result) {
			if w.done() {
				return
			}
			switch {
			case res.Err == nil && res.Status == kv.StatusOK:
				w.sub.ApplyRead(key, true, res.Value, res.Version)
			case res.Err == nil && res.Status == kv.StatusNotFound:
				w.sub.ApplyRead(key, false, nil, res.Version)
			default:
				w.sub.MarkDirty(key) // timeout/unavailable: retry next tick
			}
		})
	}
}

func (w *simWatch) armTimer(iv event.Time, fn func()) {
	w.sc.s.d.Sim.After(iv, func() {
		if w.done() {
			return
		}
		fn()
		w.armTimer(iv, fn)
	})
}

// Watcher polls keys and notifies subscribers of version changes.
//
// Deprecated: Watcher predates the push-watch relay tier and re-reads
// every key each interval forever. Use Client.Watch, which costs zero
// reads while the event stream is healthy. Watcher remains as a thin
// compatibility shim over the same delivery engine.
type Watcher = watch.Watcher

// NewWatcher starts a watcher polling through this client at the given
// interval. Stop it when done.
//
// Deprecated: use Client.Watch.
func (cl *Client) NewWatcher(interval time.Duration) (*Watcher, error) {
	return watch.New(cl.ops, interval)
}
